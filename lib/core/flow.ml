(** The flow coordinator: what "executing" the DSL does (Section IV).

    From a validated {!Spec.t} plus one kernel ("synthesizable C") per node,
    [build] performs, in order:
    + consistency checks between the DSL interfaces and the kernel ports;
    + HLS on every node (through {!Soc_hls.Engine});
    + system integration: Tcl generation for both backend versions, address
      map assignment, DMA planning for every 'soc-crossing stream;
    + logic synthesis cost aggregation (the Table II numbers);
    + software generation: device tree, boot set, C API ({!Swgen});
    + tool-runtime estimation (the Fig. 9 numbers).

    [instantiate] then turns a build into a live simulated system
    ({!Soc_platform.System}) ready to run under the co-simulation
    executive — the equivalent of booting the generated bitstream on the
    Zedboard. *)

module Ast = Soc_kernel.Ast

type mismatch =
  | Missing_kernel of string
  | Missing_port of string * string
  | Extra_port of string * string
  | Kind_mismatch of string * string (* node, port *)
  | Direction_mismatch of string * string

let pp_mismatch fmt = function
  | Missing_kernel n -> Format.fprintf fmt "no kernel provided for node %S" n
  | Missing_port (n, p) -> Format.fprintf fmt "kernel for %S lacks port %S" n p
  | Extra_port (n, p) -> Format.fprintf fmt "kernel for %S has undeclared port %S" n p
  | Kind_mismatch (n, p) ->
    Format.fprintf fmt "node %S port %S: DSL interface kind differs from kernel port" n p
  | Direction_mismatch (n, p) ->
    Format.fprintf fmt "node %S port %S: link direction conflicts with kernel port direction" n p

(* Check one node's kernel against its DSL declaration. *)
let check_kernel (spec : Spec.t) (node : Spec.node_spec) (k : Ast.kernel) : mismatch list =
  let errs = ref [] in
  let kports = List.map (fun p -> (Ast.port_name p, p)) k.ports in
  List.iter
    (fun (pname, kind) ->
      match List.assoc_opt pname kports with
      | None -> errs := Missing_port (node.node_name, pname) :: !errs
      | Some kp -> (
        let kernel_kind = if Ast.is_stream kp then Spec.Stream else Spec.Lite in
        if kernel_kind <> kind then errs := Kind_mismatch (node.node_name, pname) :: !errs
        else if kind = Spec.Stream then
          match Spec.stream_direction spec ~node:node.node_name ~port:pname with
          | Some Spec.Input when Ast.port_dir kp <> Ast.In ->
            errs := Direction_mismatch (node.node_name, pname) :: !errs
          | Some Spec.Output when Ast.port_dir kp <> Ast.Out ->
            errs := Direction_mismatch (node.node_name, pname) :: !errs
          | _ -> ()))
    node.node_ports;
  List.iter
    (fun (pname, _) ->
      if not (List.mem_assoc pname node.node_ports) then
        errs := Extra_port (node.node_name, pname) :: !errs)
    kports;
  List.rev !errs

type node_impl = {
  node : Spec.node_spec;
  kernel : Ast.kernel;
  accel : Soc_hls.Engine.accel;
}

type dma_channel = {
  logical : string * string; (* node, port *)
  direction : [ `To_device | `From_device ];
}

(* One DMA channel per 'soc-crossing stream link. *)
let dma_channels_of_spec (spec : Spec.t) =
  List.map (fun (n, p) -> { logical = (n, p); direction = `To_device })
    (Spec.soc_to_node_links spec)
  @ List.map (fun (n, p) -> { logical = (n, p); direction = `From_device })
      (Spec.node_to_soc_links spec)

(* Address map mirroring what [instantiate] creates: accelerators in node
   order, then DMA register files, in 64 KiB segments from GP0. *)
let address_map_of_spec (spec : Spec.t) =
  let seg = 0x1_0000 in
  List.mapi
    (fun idx (n : Spec.node_spec) -> (n.node_name, Soc_axi.Lite.gp0_base + (idx * seg), seg))
    spec.nodes
  @ List.mapi
      (fun idx ch ->
        let n, p = ch.logical in
        ( Printf.sprintf "dma_%s_%s" n p,
          Soc_axi.Lite.gp0_base + ((List.length spec.nodes + idx) * seg),
          seg ))
      (dma_channels_of_spec spec)

type build = {
  spec : Spec.t;
  dsl_source : string; (* canonical DSL text (conciseness metric) *)
  impls : node_impl list;
  tcl_2014 : string;
  tcl_2015 : string;
  address_map : (string * int * int) list;
  dma_channels : dma_channel list;
  resources : Soc_hls.Report.usage; (* aggregated system total *)
  resources_by_core : (string * Soc_hls.Report.usage) list;
  sw : Swgen.boot_artifacts;
  tool_times : Toolsim.breakdown;
  bitstream : string; (* artifact name, as the paper's flow reports it *)
}

exception Build_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Build_error s)) fmt

(* Fabric cost of the integration glue around the accelerators. *)
let integration_resources (spec : Spec.t) ~fifo_depth : Soc_hls.Report.usage =
  let dma_count =
    List.length (Spec.soc_to_node_links spec) + List.length (Spec.node_to_soc_links spec)
  in
  let lite_slave_count = List.length (Spec.connects spec) + List.length (Spec.stream_nodes spec) + dma_count in
  let internal = List.length (Spec.internal_links spec) in
  let dma_lut, dma_ff, dma_bram =
    let l, f, b = Soc_axi.Dma.resource_cost ~channels:1 in
    (l * dma_count, f * dma_count, b * dma_count)
  in
  (* AXI-Lite interconnect: per-master-port decode + register slices. *)
  let ic_lut = 180 * lite_slave_count and ic_ff = 260 * lite_slave_count in
  (* Inter-accelerator stream FIFOs. *)
  let fifo_bram = internal * ((fifo_depth * 32 + 18431) / 18432) in
  let fifo_lut = internal * 48 and fifo_ff = internal * 70 in
  {
    Soc_hls.Report.lut = dma_lut + ic_lut + fifo_lut;
    ff = dma_ff + ic_ff + fifo_ff;
    bram18 = dma_bram + fifo_bram;
    dsp = 0;
  }

let build ?(hls_config = Soc_hls.Engine.default_config)
    ?(fifo_depth = Soc_platform.Config.zedboard.Soc_platform.Config.default_fifo_depth)
    ?(hls_cache : (string, unit) Hashtbl.t option) (spec : Spec.t)
    ~(kernels : (string * Ast.kernel) list) : build =
  Spec.validate_exn spec;
  (* 1. Kernel/interface consistency. *)
  let impls =
    List.map
      (fun (node : Spec.node_spec) ->
        match List.assoc_opt node.node_name kernels with
        | None ->
          fail "%s" (Format.asprintf "%a" pp_mismatch (Missing_kernel node.node_name))
        | Some kernel -> (
          match check_kernel spec node kernel with
          | [] -> (node, kernel)
          | errs ->
            fail "%s"
              (String.concat "; " (List.map (Format.asprintf "%a" pp_mismatch) errs))))
      spec.nodes
  in
  (* 2. HLS per node. *)
  let impls =
    List.map
      (fun (node, kernel) ->
        { node; kernel; accel = Soc_hls.Engine.synthesize ~config:hls_config kernel })
      impls
  in
  (* 3. System integration. *)
  let tcl_2014 = Tcl.generate ~version:Tcl.V2014_2 spec in
  let tcl_2015 = Tcl.generate ~version:Tcl.V2015_3 spec in
  let dma_channels = dma_channels_of_spec spec in
  let address_map = address_map_of_spec spec in
  (* 4. Resource aggregation ("post-synthesis" Table II numbers). *)
  let resources_by_core =
    List.map (fun impl -> (impl.node.Spec.node_name, impl.accel.Soc_hls.Engine.report.Soc_hls.Report.resources)) impls
  in
  let resources =
    Soc_hls.Report.sum (List.map snd resources_by_core @ [ integration_resources spec ~fifo_depth ])
  in
  (* 5. Software generation. *)
  let sw = Swgen.generate spec ~address_map in
  (* 6. Tool-runtime estimation. *)
  let dsl_source = Printer.to_source spec in
  let cache = match hls_cache with Some c -> c | None -> Hashtbl.create 8 in
  let tool_times =
    Toolsim.estimate ~arch:spec.design_name
      ~dsl_lines:(Soc_util.Metrics.of_string dsl_source).Soc_util.Metrics.lines
      ~kernel_complexities:
        (List.map (fun i -> (i.kernel.Ast.kname, Ast.complexity i.kernel)) impls)
      ~hls_cache:cache
      ~cells:(List.length spec.nodes + List.length dma_channels + 3)
      ~luts:resources.Soc_hls.Report.lut
  in
  {
    spec;
    dsl_source;
    impls;
    tcl_2014;
    tcl_2015;
    address_map;
    dma_channels;
    resources;
    resources_by_core;
    sw;
    tool_times;
    bitstream = spec.design_name ^ "_bd_wrapper.bit";
  }

(* ------------------------------------------------------------------ *)
(* Instantiation: "boot the board"                                     *)
(* ------------------------------------------------------------------ *)

type live = {
  lbuild : build;
  system : Soc_platform.System.t;
  exec : Soc_platform.Executive.t;
  (* logical (node, port) -> DMA channel name inside the system *)
  channels : ((string * string) * string) list;
}

let instantiate ?(config = Soc_platform.Config.zedboard) ?fifo_depth
    ?(mode = `Rtl) (b : build) : live =
  let config =
    match fifo_depth with
    | Some d -> { config with Soc_platform.Config.default_fifo_depth = d }
    | None -> config
  in
  let sys = Soc_platform.System.create ~config () in
  List.iter
    (fun impl ->
      match mode with
      | `Rtl ->
        ignore
          (Soc_platform.System.add_accel sys ~name:impl.node.Spec.node_name
             impl.accel.Soc_hls.Engine.fsmd)
      | `Behavioral ->
        ignore
          (Soc_platform.System.add_accel_behavioral sys ~name:impl.node.Spec.node_name
             impl.kernel))
    b.impls;
  List.iter
    (fun ((a, ap), (bn, bp)) ->
      ignore (Soc_platform.System.link_stream sys ~src:(a, ap) ~dst:(bn, bp) ()))
    (Spec.internal_links b.spec);
  let channels =
    List.map
      (fun (ch : dma_channel) ->
        let n, p = ch.logical in
        match ch.direction with
        | `To_device ->
          let name, _ = Soc_platform.System.add_mm2s sys ~dst:(n, p) () in
          (ch.logical, name)
        | `From_device ->
          let name, _ = Soc_platform.System.add_s2mm sys ~src:(n, p) () in
          (ch.logical, name))
      b.dma_channels
  in
  (match Soc_platform.System.validate sys with
  | [] -> ()
  | unbound -> fail "integration left stream ports unbound: %s" (String.concat ", " unbound));
  { lbuild = b; system = sys; exec = Soc_platform.Executive.create sys; channels }

let channel (live : live) ~node ~port =
  match List.assoc_opt (node, port) live.channels with
  | Some name -> name
  | None -> fail "no DMA channel for %s.%s" node port

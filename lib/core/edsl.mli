(** Embedded DSL: the paper's key idea is that every keyword is an
    executable function (Fig. 6). Keywords mutate a builder; sections are
    enforced at runtime like the Scala original; every keyword appends to
    an execution trace.

    {[
      let fig4 =
        design "fig4" @@ fun tg ->
          nodes tg;
            node tg "MUL" |> i "A" |> i "B" |> i "return_" |> end_;
            node tg "GAUSS" |> is "in" |> is "out" |> end_;
          end_nodes tg;
          edges tg;
            connect tg "MUL";
            link tg soc ~to_:(port "GAUSS" "in");
            link tg (port "GAUSS" "out") ~to_:soc;
          end_edges tg
    ]} *)

exception Syntax of string
(** Misplaced or missing section / malformed node. *)

(** What the "execution" of each keyword performed, mirroring Fig. 6. *)
type trace_step =
  | Created_project of string
  | Created_node of string  (** new Vivado HLS project for the node *)
  | Added_interface of string * string * Spec.port_kind
  | Synthesized_node of string  (** [end_] triggers HLS *)
  | Connected_lite of string
  | Created_link of Spec.endpoint * Spec.endpoint
  | Executed_integration  (** [end_edges] runs the Vivado project *)

type t
(** The builder threaded through a description. *)

type open_node
(** A node under construction: [i]/[is] chain onto it, [end_] seals it. *)

val nodes : t -> unit
val node : t -> string -> open_node
val i : string -> open_node -> open_node
(** Add an AXI-Lite interface. *)

val is : string -> open_node -> open_node
(** Add an AXI-Stream interface. *)

val end_ : open_node -> unit
val end_nodes : t -> unit
val edges : t -> unit

val soc : Spec.endpoint
val port : string -> string -> Spec.endpoint

val connect : t -> string -> unit
val link : t -> Spec.endpoint -> to_:Spec.endpoint -> unit
val end_edges : t -> unit

val design : ?validate:bool -> string -> (t -> unit) -> Spec.t
(** Execute a description and elaborate the (validated) spec. *)

val trace : t -> trace_step list

val design_with_trace : ?validate:bool -> string -> (t -> unit) -> Spec.t * trace_step list

val pp_trace_step : Format.formatter -> trace_step -> unit

(** Recursive-descent parser for the DSL's concrete syntax, following the
    EBNF of Listing 1. Semicolons are accepted where the listings show
    them and are otherwise optional, like Scala's semicolon inference. *)

exception Parse_error of string * int * int
(** Message, line, column. *)

val parse : ?validate:bool -> string -> Spec.t
(** Parse then validate ([Failure] on semantic errors unless
    [validate:false]). Lexical errors raise {!Lexer.Lex_error}. *)

val parse_result : string -> (Spec.t, string) result
(** All error classes folded into a ["line:col: message"] string. *)

(** Lexer for the external concrete syntax of the DSL (the Scala source of
    Listings 2–4). Supports Scala line and block comments. *)

type token =
  | Kw of string (* object extends App tg nodes end_nodes node edges end_edges i is connect link to end *)
  | Ident of string
  | Str of string (* "..." *)
  | Soc (* 'soc *)
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Eof

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int (* message, line, col *)

let keywords =
  [ "object"; "extends"; "App"; "tg"; "nodes"; "end_nodes"; "node"; "edges"; "end_edges";
    "i"; "is"; "connect"; "link"; "to"; "end" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize (src : string) : located list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let toks = ref [] in
  let emit tok l c = toks := { tok; line = l; col = c } :: !toks in
  let pos = ref 0 in
  let advance () =
    (if !pos < n then
       if src.[!pos] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr pos
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do advance () done
    else if c = '/' && peek 1 = Some '*' then begin
      advance (); advance ();
      let closed = ref false in
      while !pos < n && not !closed do
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          advance (); advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated block comment", l, co))
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while !pos < n && not !closed do
        if src.[!pos] = '"' then begin
          advance ();
          closed := true
        end
        else begin
          Buffer.add_char buf src.[!pos];
          advance ()
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string literal", l, co));
      emit (Str (Buffer.contents buf)) l co
    end
    else if c = '\'' then begin
      (* Scala symbol literal; the DSL only uses 'soc. *)
      advance ();
      let buf = Buffer.create 8 in
      while !pos < n && is_ident_char src.[!pos] do
        Buffer.add_char buf src.[!pos];
        advance ()
      done;
      let name = Buffer.contents buf in
      if name = "soc" then emit Soc l co
      else raise (Lex_error ("unknown symbol literal '" ^ name, l, co))
    end
    else if is_ident_start c then begin
      let buf = Buffer.create 16 in
      while !pos < n && is_ident_char src.[!pos] do
        Buffer.add_char buf src.[!pos];
        advance ()
      done;
      let word = Buffer.contents buf in
      if List.mem word keywords then emit (Kw word) l co else emit (Ident word) l co
    end
    else begin
      (match c with
      | '{' -> emit Lbrace l co
      | '}' -> emit Rbrace l co
      | '(' -> emit Lparen l co
      | ')' -> emit Rparen l co
      | ',' -> emit Comma l co
      | ';' -> emit Semi l co
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, l, co)));
      advance ()
    end
  done;
  emit Eof !line !col;
  List.rev !toks

let token_to_string = function
  | Kw k -> k
  | Ident s -> "identifier " ^ s
  | Str s -> Printf.sprintf "%S" s
  | Soc -> "'soc"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Semi -> ";"
  | Eof -> "<eof>"

(** Recursive-descent parser for the DSL's concrete syntax, following the
    EBNF of Listing 1:

    {v
    <DSL>        ::= object <Project> extends App { <Graph> }
    <Graph>      ::= <Nodes> <Edges>
    <Nodes>      ::= tg nodes; <Node>+ tg end_nodes;
    <Edges>      ::= tg edges; <Edge>+ tg end_edges;
    <Node>       ::= tg node <NodeName> <Interface>+ end;
    <Interface>  ::= i <PortName> | is <PortName>
    <Edge>       ::= <AXI-Lite> | <AXI-Stream>
    <AXI-Lite>   ::= tg connect <PortName>;
    <AXI-Stream> ::= tg link <Port> to <Port> end;
    <Port>       ::= 'soc | ( <NodeName>, <PortName> )
    v}

    Semicolons are accepted wherever the listings show them and are
    otherwise optional, like Scala's semicolon inference. *)

exception Parse_error of string * int * int

type state = { mutable toks : Lexer.located list }

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  let t = peek st in
  raise (Parse_error (msg ^ ", found " ^ Lexer.token_to_string t.Lexer.tok, t.line, t.col))

let expect st tok what =
  let t = peek st in
  if t.Lexer.tok = tok then advance st else fail st ("expected " ^ what)

let expect_kw st kw = expect st (Lexer.Kw kw) ("keyword '" ^ kw ^ "'")

let accept st tok =
  let t = peek st in
  if t.Lexer.tok = tok then begin
    advance st;
    true
  end
  else false

let skip_semis st = while accept st Lexer.Semi do () done

let parse_string st what =
  match (peek st).Lexer.tok with
  | Lexer.Str s ->
    advance st;
    s
  | _ -> fail st ("expected " ^ what)

let parse_project_name st =
  match (peek st).Lexer.tok with
  | Lexer.Ident s ->
    advance st;
    s
  | _ -> fail st "expected project name"

let parse_port st : Spec.endpoint =
  match (peek st).Lexer.tok with
  | Lexer.Soc ->
    advance st;
    Spec.Soc
  | Lexer.Lparen ->
    advance st;
    let node = parse_string st "node name" in
    expect st Lexer.Comma "','";
    let port = parse_string st "port name" in
    expect st Lexer.Rparen "')'";
    Spec.Port (node, port)
  | _ -> fail st "expected 'soc or (node, port)"

let parse_interfaces st =
  let rec go acc =
    match (peek st).Lexer.tok with
    | Lexer.Kw "i" ->
      advance st;
      let p = parse_string st "port name" in
      go ((p, Spec.Lite) :: acc)
    | Lexer.Kw "is" ->
      advance st;
      let p = parse_string st "port name" in
      go ((p, Spec.Stream) :: acc)
    | _ -> List.rev acc
  in
  go []

let span_of st =
  let t = peek st in
  { Soc_util.Diag.line = t.Lexer.line; col = t.Lexer.col }

let parse_node st : Spec.node_spec =
  let span = span_of st in
  expect_kw st "tg";
  expect_kw st "node";
  let name = parse_string st "node name" in
  let ports = parse_interfaces st in
  if ports = [] then fail st ("node " ^ name ^ " needs at least one interface");
  expect_kw st "end";
  skip_semis st;
  Spec.make_node ~span name ports

let parse_nodes st =
  expect_kw st "tg";
  expect_kw st "nodes";
  skip_semis st;
  let rec go acc =
    (* lookahead: "tg end_nodes" terminates; "tg node" continues *)
    match st.toks with
    | { Lexer.tok = Lexer.Kw "tg"; _ } :: { Lexer.tok = Lexer.Kw "end_nodes"; _ } :: _ ->
      advance st;
      advance st;
      skip_semis st;
      List.rev acc
    | _ -> go (parse_node st :: acc)
  in
  let nodes = go [] in
  if nodes = [] then fail st "empty nodes section";
  nodes

let parse_edge st : Spec.edge_spec =
  let span = span_of st in
  expect_kw st "tg";
  match (peek st).Lexer.tok with
  | Lexer.Kw "connect" ->
    advance st;
    let name = parse_string st "node name" in
    ignore (accept st (Lexer.Kw "end"));
    skip_semis st;
    Spec.connect_edge ~span name
  | Lexer.Kw "link" ->
    advance st;
    let src = parse_port st in
    expect_kw st "to";
    let dst = parse_port st in
    expect_kw st "end";
    skip_semis st;
    Spec.link_edge ~span src dst
  | _ -> fail st "expected 'connect' or 'link'"

let parse_edges st =
  expect_kw st "tg";
  expect_kw st "edges";
  skip_semis st;
  let rec go acc =
    match st.toks with
    | { Lexer.tok = Lexer.Kw "tg"; _ } :: { Lexer.tok = Lexer.Kw "end_edges"; _ } :: _ ->
      advance st;
      advance st;
      skip_semis st;
      List.rev acc
    | _ -> go (parse_edge st :: acc)
  in
  go []

let parse_dsl st : Spec.t =
  expect_kw st "object";
  let name = parse_project_name st in
  expect_kw st "extends";
  expect_kw st "App";
  expect st Lexer.Lbrace "'{'";
  skip_semis st;
  let nodes = parse_nodes st in
  let edges = parse_edges st in
  expect st Lexer.Rbrace "'}'";
  skip_semis st;
  expect st Lexer.Eof "end of input";
  { Spec.design_name = name; nodes; edges }

(* Parse, then validate. *)
let parse ?(validate = true) src : Spec.t =
  let st = { toks = Lexer.tokenize src } in
  let spec = parse_dsl st in
  if validate then Spec.validate_exn spec;
  spec

let parse_result src : (Spec.t, string) result =
  match parse src with
  | spec -> Ok spec
  | exception Parse_error (msg, l, c) -> Error (Printf.sprintf "%d:%d: %s" l c msg)
  | exception Lexer.Lex_error (msg, l, c) -> Error (Printf.sprintf "%d:%d: %s" l c msg)
  | exception Failure msg -> Error msg

(** Elaborated system specification: the task graph G = (N, E) of Section
    III, after DSL parsing/execution. Nodes carry their interface ports
    (AXI-Lite or AXI-Stream); edges are either [Connect] (an AXI-Lite
    attachment of a node's register interface to the system bus) or [Link]
    (an AXI-Stream connection between two stream ports, or between a stream
    port and the system bus through a DMA core — the ['soc] endpoint). *)

type port_kind = Lite | Stream

let pp_port_kind fmt = function
  | Lite -> Format.pp_print_string fmt "AXI-Lite"
  | Stream -> Format.pp_print_string fmt "AXI-Stream"

type node_spec = {
  node_name : string;
  node_ports : (string * port_kind) list; (* declaration order preserved *)
}

type endpoint = Soc | Port of string * string (* node, port *)

let pp_endpoint fmt = function
  | Soc -> Format.pp_print_string fmt "'soc"
  | Port (n, p) -> Format.fprintf fmt "(%S, %S)" n p

type edge_spec =
  | Connect of string (* node whose AXI-Lite interface joins the bus *)
  | Link of endpoint * endpoint (* AXI-Stream: src -> dst *)

type t = {
  design_name : string;
  nodes : node_spec list;
  edges : edge_spec list;
}

let find_node t name = List.find_opt (fun n -> n.node_name = name) t.nodes

let port_kind t ~node ~port =
  match find_node t node with
  | None -> None
  | Some n -> List.assoc_opt port n.node_ports

let links t = List.filter_map (function Link (a, b) -> Some (a, b) | Connect _ -> None) t.edges
let connects t = List.filter_map (function Connect n -> Some n | Link _ -> None) t.edges

(* Stream ports that are sources (resp. destinations) of links. *)
let stream_outputs t =
  List.filter_map (function Link (Port (n, p), _) -> Some (n, p) | _ -> None) t.edges

let stream_inputs t =
  List.filter_map (function Link (_, Port (n, p)) -> Some (n, p) | _ -> None) t.edges

(* Links that cross the 'soc boundary need a DMA channel. *)
let soc_to_node_links t =
  List.filter_map (function Link (Soc, Port (n, p)) -> Some (n, p) | _ -> None) t.edges

let node_to_soc_links t =
  List.filter_map (function Link (Port (n, p), Soc) -> Some (n, p) | _ -> None) t.edges

let internal_links t =
  List.filter_map
    (function Link (Port (a, ap), Port (b, bp)) -> Some ((a, ap), (b, bp)) | _ -> None)
    t.edges

(* Nodes reached by at least one stream link. *)
let stream_nodes t =
  let names =
    List.concat_map
      (function
        | Link (Port (a, _), Port (b, _)) -> [ a; b ]
        | Link (Port (a, _), Soc) | Link (Soc, Port (a, _)) -> [ a ]
        | Link (Soc, Soc) | Connect _ -> [])
      t.edges
  in
  List.sort_uniq compare names

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

type error =
  | Duplicate_node of string
  | Duplicate_port of string * string
  | Unknown_node of string
  | Unknown_port of string * string
  | Lite_port_in_link of string * string
  | Stream_port_in_connect of string
  | Port_direction_conflict of string * string
  | Port_reused of string * string
  | Soc_to_soc_link
  | Unconnected_stream_port of string * string
  | Node_without_interface of string

let pp_error fmt = function
  | Duplicate_node n -> Format.fprintf fmt "duplicate node %S" n
  | Duplicate_port (n, p) -> Format.fprintf fmt "node %S: duplicate port %S" n p
  | Unknown_node n -> Format.fprintf fmt "edge references unknown node %S" n
  | Unknown_port (n, p) -> Format.fprintf fmt "edge references unknown port %S of node %S" p n
  | Lite_port_in_link (n, p) ->
    Format.fprintf fmt "AXI-Lite port %S.%S cannot appear in a stream link" n p
  | Stream_port_in_connect n ->
    Format.fprintf fmt "connect %S: node has no AXI-Lite port to attach" n
  | Port_direction_conflict (n, p) ->
    Format.fprintf fmt "stream port %S.%S is used both as source and destination" n p
  | Port_reused (n, p) -> Format.fprintf fmt "stream port %S.%S used by more than one link" n p
  | Soc_to_soc_link -> Format.fprintf fmt "a link cannot connect 'soc to 'soc"
  | Unconnected_stream_port (n, p) ->
    Format.fprintf fmt "stream port %S.%S is not connected by any link" n p
  | Node_without_interface n -> Format.fprintf fmt "node %S declares no port" n

let error_to_string e = Format.asprintf "%a" pp_error e

let validate t =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  (* Node and port uniqueness. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n.node_name then err (Duplicate_node n.node_name);
      Hashtbl.replace seen n.node_name ();
      if n.node_ports = [] then err (Node_without_interface n.node_name);
      let pseen = Hashtbl.create 8 in
      List.iter
        (fun (p, _) ->
          if Hashtbl.mem pseen p then err (Duplicate_port (n.node_name, p));
          Hashtbl.replace pseen p ())
        n.node_ports)
    t.nodes;
  (* Edge endpoint resolution. *)
  let check_port role (node, port) =
    match find_node t node with
    | None -> err (Unknown_node node)
    | Some n -> (
      match List.assoc_opt port n.node_ports with
      | None -> err (Unknown_port (node, port))
      | Some Lite -> err (Lite_port_in_link (node, port))
      | Some Stream -> ignore role)
  in
  let as_src = Hashtbl.create 8 and as_dst = Hashtbl.create 8 in
  List.iter
    (function
      | Connect node -> (
        match find_node t node with
        | None -> err (Unknown_node node)
        | Some n ->
          if not (List.exists (fun (_, k) -> k = Lite) n.node_ports) then
            err (Stream_port_in_connect node))
      | Link (a, b) -> (
        (match (a, b) with
        | Soc, Soc -> err Soc_to_soc_link
        | _ -> ());
        (match a with
        | Port (n, p) ->
          check_port `Src (n, p);
          if Hashtbl.mem as_src (n, p) then err (Port_reused (n, p));
          Hashtbl.replace as_src (n, p) ()
        | Soc -> ());
        match b with
        | Port (n, p) ->
          check_port `Dst (n, p);
          if Hashtbl.mem as_dst (n, p) then err (Port_reused (n, p));
          Hashtbl.replace as_dst (n, p) ()
        | Soc -> ()))
    t.edges;
  (* Direction conflicts and unconnected stream ports. *)
  List.iter
    (fun n ->
      List.iter
        (fun (p, kind) ->
          if kind = Stream then begin
            let s = Hashtbl.mem as_src (n.node_name, p)
            and d = Hashtbl.mem as_dst (n.node_name, p) in
            if s && d then err (Port_direction_conflict (n.node_name, p));
            if (not s) && not d then err (Unconnected_stream_port (n.node_name, p))
          end)
        n.node_ports)
    t.nodes;
  match List.rev !errs with [] -> Ok () | es -> Error es

let validate_exn t =
  match validate t with
  | Ok () -> ()
  | Error es ->
    failwith
      (Printf.sprintf "invalid system spec %s: %s" t.design_name
         (String.concat "; " (List.map error_to_string es)))

(* Inferred direction of a stream port, from link usage. *)
type direction = Input | Output

let stream_direction t ~node ~port =
  if List.mem (node, port) (stream_inputs t) then Some Input
  else if List.mem (node, port) (stream_outputs t) then Some Output
  else None

include Soc_analysis.Spec

(** Runtime model of the commercial tools the flow coordinates, anchored
    on Section VI.C (~6 s Scala compile, ~50 s project generation, HLS
    once per function, 42 minutes for the whole case study). Phase
    durations are deterministic functions of kernel complexity and system
    LUT count. *)

type phase = Scala_compile | Hls | Project_gen | Synthesis | Implementation | Bitgen

val phase_name : phase -> string
val all_phases : phase list

type breakdown = {
  arch : string;
  seconds : (phase * float) list;
}

val total : breakdown -> float

val scala_time : dsl_lines:int -> float
val hls_time_per_kernel : complexity:int -> float
val project_gen_time : cells:int -> float
val synthesis_time : luts:int -> float
val implementation_time : luts:int -> float
val bitgen_time : float

type kernel_cost = { kname : string; complexity : int; reused : bool }
(** One kernel's contribution to the HLS phase; [reused] marks accelerators
    taken from an earlier build ("cores are generated only once"). *)

val estimate_costed :
  arch:string ->
  dsl_lines:int ->
  kernel_costs:kernel_cost list ->
  cells:int ->
  luts:int ->
  breakdown
(** Primary entry point: reused kernels cost nothing in the HLS phase. The
    caller decides reuse — {!Soc_farm.Cache} attributes it by content hash
    so the estimate and the actual HLS work agree by construction. *)

val estimate :
  arch:string ->
  dsl_lines:int ->
  kernel_complexities:(string * int) list ->
  hls_cache:(string, unit) Hashtbl.t ->
  cells:int ->
  luts:int ->
  breakdown
(** @deprecated Name-keyed wrapper over {!estimate_costed}, kept for one
    release. Kernels present in [hls_cache] cost nothing; new ones are added
    to the cache. The table only discounts the estimate — it shares no
    actual HLS work, so prefer the farm cache. *)

val pp : Format.formatter -> breakdown -> unit

(** Runtime model of the commercial tools the flow coordinates, anchored
    on Section VI.C (~6 s Scala compile, ~50 s project generation, HLS
    once per function, 42 minutes for the whole case study). Phase
    durations are deterministic functions of kernel complexity and system
    LUT count. *)

type phase = Scala_compile | Hls | Project_gen | Synthesis | Implementation | Bitgen

val phase_name : phase -> string
val all_phases : phase list

type breakdown = {
  arch : string;
  seconds : (phase * float) list;
}

val total : breakdown -> float

val scala_time : dsl_lines:int -> float
val hls_time_per_kernel : complexity:int -> float
val project_gen_time : cells:int -> float
val synthesis_time : luts:int -> float
val implementation_time : luts:int -> float
val bitgen_time : float

val estimate :
  arch:string ->
  dsl_lines:int ->
  kernel_complexities:(string * int) list ->
  hls_cache:(string, unit) Hashtbl.t ->
  cells:int ->
  luts:int ->
  breakdown
(** Kernels present in [hls_cache] cost nothing (the paper's "cores are
    generated only once" reuse); new ones are added to the cache. *)

val pp : Format.formatter -> breakdown -> unit

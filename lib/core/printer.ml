(** Pretty-printer: spec back to the DSL's concrete syntax. [Parser.parse]
    of [to_source spec] yields a spec equal to [spec] (round-trip property,
    tested with qcheck). The printed text is also the "Scala task graph"
    side of the Section VI.C conciseness comparison. *)

let endpoint_to_source = function
  | Spec.Soc -> "'soc"
  | Spec.Port (n, p) -> Printf.sprintf "(%S, %S)" n p

let node_to_source (n : Spec.node_spec) =
  let ports =
    String.concat " "
      (List.map
         (fun (p, kind) ->
           match kind with
           | Spec.Lite -> Printf.sprintf "i %S" p
           | Spec.Stream -> Printf.sprintf "is %S" p)
         n.node_ports)
  in
  Printf.sprintf "    tg node %S %s end;" n.node_name ports

let edge_to_source (e : Spec.edge_spec) =
  match e.Spec.edge with
  | Spec.Connect name -> Printf.sprintf "    tg connect %S;" name
  | Spec.Link (src, dst) ->
    Printf.sprintf "    tg link %s to %s end;" (endpoint_to_source src)
      (endpoint_to_source dst)

let to_source (spec : Spec.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "object %s extends App {\n" spec.design_name);
  Buffer.add_string buf "  tg nodes;\n";
  List.iter (fun n -> Buffer.add_string buf (node_to_source n ^ "\n")) spec.nodes;
  Buffer.add_string buf "  tg end_nodes;\n";
  Buffer.add_string buf "  tg edges;\n";
  List.iter (fun e -> Buffer.add_string buf (edge_to_source e ^ "\n")) spec.edges;
  Buffer.add_string buf "  tg end_edges;\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt spec = Format.pp_print_string fmt (to_source spec)

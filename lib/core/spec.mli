(** Elaborated system specification: the task graph G = (N, E) of Section
    III after DSL parsing/execution. Nodes carry AXI-Lite or AXI-Stream
    ports; edges are [Connect] (register interface on the bus) or [Link]
    (stream between ports, or through a DMA channel at the ['soc]
    boundary). *)

type port_kind = Lite | Stream

val pp_port_kind : Format.formatter -> port_kind -> unit

type node_spec = {
  node_name : string;
  node_ports : (string * port_kind) list;  (** declaration order *)
}

type endpoint = Soc | Port of string * string

val pp_endpoint : Format.formatter -> endpoint -> unit

type edge_spec =
  | Connect of string
  | Link of endpoint * endpoint  (** src -> dst *)

type t = {
  design_name : string;
  nodes : node_spec list;
  edges : edge_spec list;
}

val find_node : t -> string -> node_spec option
val port_kind : t -> node:string -> port:string -> port_kind option
val links : t -> (endpoint * endpoint) list
val connects : t -> string list
val stream_outputs : t -> (string * string) list
val stream_inputs : t -> (string * string) list

val soc_to_node_links : t -> (string * string) list
(** Links needing an MM2S DMA channel. *)

val node_to_soc_links : t -> (string * string) list
val internal_links : t -> ((string * string) * (string * string)) list

val stream_nodes : t -> string list
(** Nodes touched by at least one stream link (sorted, unique). *)

(** {2 Validation} *)

type error =
  | Duplicate_node of string
  | Duplicate_port of string * string
  | Unknown_node of string
  | Unknown_port of string * string
  | Lite_port_in_link of string * string
  | Stream_port_in_connect of string
  | Port_direction_conflict of string * string
  | Port_reused of string * string
  | Soc_to_soc_link
  | Unconnected_stream_port of string * string
  | Node_without_interface of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val validate : t -> (unit, error list) result
val validate_exn : t -> unit

type direction = Input | Output

val stream_direction : t -> node:string -> port:string -> direction option
(** Direction inferred from link usage. *)

(** Pretty-printer back to the DSL's concrete syntax. Round-trip law:
    [Parser.parse (to_source spec) = spec] (qcheck-verified). The printed
    text is also the DSL side of the Section VI.C conciseness metrics. *)

val endpoint_to_source : Spec.endpoint -> string
val node_to_source : Spec.node_spec -> string
val edge_to_source : Spec.edge_spec -> string
val to_source : Spec.t -> string
val pp : Format.formatter -> Spec.t -> unit

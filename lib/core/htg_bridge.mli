(** HTG-to-DSL elaboration: the Section III mapping from a partitioned
    two-level HTG to the system spec. Software nodes disappear; hardware
    task nodes become AXI-Lite accelerators on the bus; each hardware
    phase contributes one stream accelerator per actor, internal dataflow
    links become direct stream links and boundary ports route through
    'soc. Applying it to the Fig. 1 HTG yields the Fig. 4 architecture. *)

val default_lite_ports : string -> string list
(** The register interface assumed for hardware task nodes:
    ["A"; "B"; "return_"], matching the paper's ADD/MULT examples. *)

type error =
  | Sw_phase_with_hw_actors of string
  | No_hardware_nodes

val pp_error : Format.formatter -> error -> unit

val to_spec :
  ?lite_ports:(string -> string list) -> ?validate:bool -> Soc_htg.Htg.t -> Spec.t

val software_residual : Soc_htg.Htg.t -> string list
(** HTG nodes that stay on the GPP. *)

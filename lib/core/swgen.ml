(** Software generation (Section V): the Linux device tree fragment, the
    boot-file set for PetaLinux, and the C API the application links
    against — [readDMA]/[writeDMA] for stream accelerators plus
    register-level wrappers for AXI-Lite accelerators. *)

type boot_artifacts = {
  device_tree : string; (* devicetree.dtb source *)
  boot_bin_manifest : string list; (* contents of BOOT.BIN *)
  api_header : string; (* generated C header *)
  api_source : string; (* generated C implementation *)
  dev_entries : string list; (* /dev nodes the driver exposes *)
}

let dt_node ~label ~compatible ~base ~size extra =
  let lines =
    [
      Printf.sprintf "  %s: %s@%08x {" label label base;
      Printf.sprintf "    compatible = \"%s\";" compatible;
      Printf.sprintf "    reg = <0x%08x 0x%x>;" base size;
    ]
    @ List.map (fun l -> "    " ^ l) extra
    @ [ "  };" ]
  in
  String.concat "\n" lines

let device_tree (spec : Spec.t) ~(address_map : (string * int * int) list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "/dts-v1/;\n/ {\n";
  Buffer.add_string buf "  compatible = \"xlnx,zynq-zed\";\n";
  Buffer.add_string buf "  amba_pl {\n";
  Buffer.add_string buf "    #address-cells = <1>;\n    #size-cells = <1>;\n";
  List.iter
    (fun (owner, base, size) ->
      let is_dma =
        String.length owner >= 4 && String.sub owner 0 4 = "dma_"
      in
      let compatible =
        if is_dma then "xlnx,axi-dma-1.00.a" else "xlnx,hls-accelerator-1.0"
      in
      let extra =
        if is_dma then [ "dma-channels = <1>;"; "interrupts = <0 29 4>;" ] else []
      in
      Buffer.add_string buf (dt_node ~label:(Tcl.sanitize owner) ~compatible ~base ~size extra);
      Buffer.add_char buf '\n')
    address_map;
  ignore spec;
  Buffer.add_string buf "  };\n};\n";
  Buffer.contents buf

(* C wrapper per AXI-Lite node: one setter per register argument, a start
   call and a blocking wait. Stream nodes get readDMA/writeDMA pairs bound
   to their /dev entry. *)
let api_header (spec : Spec.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "#ifndef TG_GENERATED_API_H\n#define TG_GENERATED_API_H\n";
  Buffer.add_string buf "#include <stdint.h>\n#include <stddef.h>\n\n";
  Buffer.add_string buf "/* DMA driver API (see ZedBoard_Linux_DMA driver) */\n";
  Buffer.add_string buf "int writeDMA(const char *dev, const uint32_t *buf, size_t words);\n";
  Buffer.add_string buf "int readDMA(const char *dev, uint32_t *buf, size_t words);\n\n";
  List.iter
    (fun (n : Spec.node_spec) ->
      let lite_ports = List.filter (fun (_, k) -> k = Spec.Lite) n.node_ports in
      if lite_ports <> [] then begin
        let args =
          String.concat ", " (List.map (fun (p, _) -> "uint32_t " ^ p) lite_ports)
        in
        Buffer.add_string buf
          (Printf.sprintf "/* AXI-Lite accelerator %s */\n" n.node_name);
        Buffer.add_string buf
          (Printf.sprintf "void %s_start(%s);\n" (Tcl.sanitize n.node_name) args);
        Buffer.add_string buf
          (Printf.sprintf "uint32_t %s_wait(void);\n\n" (Tcl.sanitize n.node_name))
      end)
    spec.nodes;
  Buffer.add_string buf "#endif\n";
  Buffer.contents buf

let api_source (spec : Spec.t) ~(address_map : (string * int * int) list) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "#include \"tg_generated_api.h\"\n";
  Buffer.add_string buf "#include <fcntl.h>\n#include <sys/mman.h>\n#include <unistd.h>\n\n";
  Buffer.add_string buf "static volatile uint32_t *map_regs(uint32_t base) {\n";
  Buffer.add_string buf "  int fd = open(\"/dev/mem\", O_RDWR | O_SYNC);\n";
  Buffer.add_string buf
    "  return (volatile uint32_t *)mmap(0, 0x10000, PROT_READ | PROT_WRITE, MAP_SHARED, fd, base);\n}\n\n";
  List.iter
    (fun (n : Spec.node_spec) ->
      let lite_ports = List.filter (fun (_, k) -> k = Spec.Lite) n.node_ports in
      if lite_ports <> [] then begin
        let base =
          match List.find_opt (fun (o, _, _) -> o = n.node_name) address_map with
          | Some (_, b, _) -> b
          | None -> 0
        in
        let c_name = Tcl.sanitize n.node_name in
        let args =
          String.concat ", " (List.map (fun (p, _) -> "uint32_t " ^ p) lite_ports)
        in
        Buffer.add_string buf
          (Printf.sprintf "void %s_start(%s) {\n  volatile uint32_t *r = map_regs(0x%08x);\n"
             c_name args base);
        List.iteri
          (fun idx (p, _) ->
            Buffer.add_string buf
              (Printf.sprintf "  r[%d] = %s;\n" (Soc_axi.Lite.arg_offset idx / 4) p))
          lite_ports;
        Buffer.add_string buf "  r[0] = 1; /* ap_start */\n}\n\n";
        Buffer.add_string buf
          (Printf.sprintf
             "uint32_t %s_wait(void) {\n  volatile uint32_t *r = map_regs(0x%08x);\n  while (!(r[1] & 1)) ;\n  return r[%d];\n}\n\n"
             c_name base
             (Soc_axi.Lite.arg_offset (List.length lite_ports - 1) / 4))
      end)
    spec.nodes;
  Buffer.contents buf

let generate (spec : Spec.t) ~address_map : boot_artifacts =
  let dmas = Tcl.dma_plans spec in
  {
    device_tree = device_tree spec ~address_map;
    boot_bin_manifest =
      [ "zynq_fsbl.elf"; spec.design_name ^ "_bd_wrapper.bit"; "u-boot.elf"; "uImage";
        "devicetree.dtb"; "uramdisk.image.gz" ];
    api_header = api_header spec;
    api_source = api_source spec ~address_map;
    dev_entries = List.map (fun d -> "/dev/" ^ d.Tcl.dma_name) dmas;
  }

(** Block-diagram rendering of an integrated system (Figure 10): the ARM PS
    and bus in blue, DMA blocks in green, accelerator cores in per-function
    colours. Emitted both as Graphviz DOT and as a compact ASCII summary. *)

let core_palette =
  [ "lightcoral"; "orange"; "lightskyblue"; "plum"; "palegreen"; "khaki"; "lightpink" ]

let color_for idx = List.nth core_palette (idx mod List.length core_palette)

let dot_of_spec (spec : Spec.t) =
  let dma_channels = Flow.dma_channels_of_spec spec in
  let d = Soc_util.Dot.create (spec.Spec.design_name ^ "_bd") in
  Soc_util.Dot.add_node d ~id:"ps7" ~label:"Zynq PS\n(ARM Cortex-A9)"
    ~attrs:[ ("fillcolor", "steelblue"); ("fontcolor", "white") ];
  Soc_util.Dot.add_node d ~id:"axi" ~label:"AXI Interconnect"
    ~attrs:[ ("fillcolor", "lightsteelblue") ];
  Soc_util.Dot.add_edge d ~src:"ps7" ~dst:"axi" ~attrs:[ ("dir", "both") ];
  List.iteri
    (fun idx (n : Spec.node_spec) ->
      Soc_util.Dot.add_node d ~id:n.Spec.node_name ~label:n.Spec.node_name
        ~attrs:[ ("fillcolor", color_for idx) ])
    spec.Spec.nodes;
  (* AXI-Lite attachments: connected nodes + every stream node's control. *)
  List.iter
    (fun n -> Soc_util.Dot.add_edge d ~src:"axi" ~dst:n ~attrs:[ ("label", "AXI-Lite") ])
    (Spec.connects spec);
  (* DMA blocks per 'soc-crossing link. *)
  List.iteri
    (fun idx (ch : Flow.dma_channel) ->
      let node, port = ch.Flow.logical in
      let id = Printf.sprintf "dma%d" idx in
      Soc_util.Dot.add_node d ~id ~label:(Printf.sprintf "AXI DMA\n(%s.%s)" node port)
        ~attrs:[ ("fillcolor", "mediumseagreen") ];
      Soc_util.Dot.add_edge d ~src:"axi" ~dst:id ~attrs:[ ("style", "dotted") ];
      match ch.Flow.direction with
      | `To_device ->
        Soc_util.Dot.add_edge d ~src:"ps7" ~dst:id ~attrs:[ ("label", "HP0") ];
        Soc_util.Dot.add_edge d ~src:id ~dst:node ~attrs:[ ("label", "AXIS " ^ port) ]
      | `From_device ->
        Soc_util.Dot.add_edge d ~src:node ~dst:id ~attrs:[ ("label", "AXIS " ^ port) ];
        Soc_util.Dot.add_edge d ~src:id ~dst:"ps7" ~attrs:[ ("label", "HP0") ])
    dma_channels;
  List.iter
    (fun ((a, ap), (bn, bp)) ->
      Soc_util.Dot.add_edge d ~src:a ~dst:bn
        ~attrs:[ ("label", Printf.sprintf "AXIS %s->%s" ap bp) ])
    (Spec.internal_links spec);
  Soc_util.Dot.render d

let to_dot (b : Flow.build) = dot_of_spec b.Flow.spec

let ascii_of_spec (spec : Spec.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "+-- %s ----------------------------------------" spec.Spec.design_name;
  add "| [PS: ARM Cortex-A9 + DDR]  <==AXI==>  [interconnect]";
  List.iter (fun n -> add "|   AXI-Lite: %s" n) (Spec.connects spec);
  List.iter
    (fun (ch : Flow.dma_channel) ->
      let n, p = ch.Flow.logical in
      match ch.Flow.direction with
      | `To_device -> add "|   DMA MM2S ==> %s.%s" n p
      | `From_device -> add "|   %s.%s ==> DMA S2MM" n p)
    (Flow.dma_channels_of_spec spec);
  List.iter
    (fun ((a, ap), (bn, bp)) -> add "|   %s.%s ==AXIS==> %s.%s" a ap bn bp)
    (Spec.internal_links spec);
  add "+------------------------------------------------";
  Buffer.contents buf

let to_ascii (b : Flow.build) = ascii_of_spec b.Flow.spec

(** Runtime model of the commercial tools the flow coordinates.

    The paper's Figure 9 reports the wall-clock breakdown of generating the
    four case-study architectures with Vivado HLS + Vivado 2014.2 on a
    workstation (42 minutes in total; ~6 s to compile the Scala task graph;
    ~50 s to generate the Vivado project; HLS runs once per function). We
    cannot run Xilinx tools in this environment, so phase durations come
    from a deterministic cost model with those anchor points: HLS time grows
    with kernel complexity, synthesis/implementation time with the LUT count
    of the integrated system. *)

type phase = Scala_compile | Hls | Project_gen | Synthesis | Implementation | Bitgen

let phase_name = function
  | Scala_compile -> "SCALA"
  | Hls -> "HLS"
  | Project_gen -> "PROJECT"
  | Synthesis -> "SYNTH"
  | Implementation -> "IMPL"
  | Bitgen -> "BITGEN"

let all_phases = [ Scala_compile; Hls; Project_gen; Synthesis; Implementation; Bitgen ]

type breakdown = {
  arch : string;
  seconds : (phase * float) list;
}

let total b = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 b.seconds

(* Anchors from Section VI.C. *)
let scala_time ~dsl_lines = 6.0 +. (0.05 *. float_of_int dsl_lines)

let hls_time_per_kernel ~complexity = 24.0 +. (1.1 *. float_of_int complexity)

let project_gen_time ~cells = 26.0 +. (2.4 *. float_of_int cells)

let synthesis_time ~luts = 85.0 +. (0.011 *. float_of_int luts)

let implementation_time ~luts = 130.0 +. (0.017 *. float_of_int luts)

let bitgen_time = 42.0

(* Reuse models the paper's claim: "the generation of the hardware cores is
   done only once for each function" — a kernel whose accelerator is reused
   from an earlier build costs nothing. Who decides what counts as reused is
   the caller (the farm attributes it by content hash and batch order; the
   legacy [estimate] below keys on kernel names in a shared table). *)
type kernel_cost = { kname : string; complexity : int; reused : bool }

let estimate_costed ~arch ~dsl_lines ~(kernel_costs : kernel_cost list) ~cells ~luts :
    breakdown =
  let hls =
    List.fold_left
      (fun acc kc ->
        if kc.reused then acc else acc +. hls_time_per_kernel ~complexity:kc.complexity)
      0.0 kernel_costs
  in
  {
    arch;
    seconds =
      [
        (Scala_compile, scala_time ~dsl_lines);
        (Hls, hls);
        (Project_gen, project_gen_time ~cells);
        (Synthesis, synthesis_time ~luts);
        (Implementation, implementation_time ~luts);
        (Bitgen, bitgen_time);
      ];
  }

(* Deprecated entry point, kept for one release: name-keyed reuse through a
   caller-shared unit table. It discounts only the *estimate*; the farm's
   artifact cache ({!Soc_farm.Cache}) keys both the estimate and the actual
   HLS work by the same content hash, so the two can never disagree. *)
let estimate ~arch ~dsl_lines ~(kernel_complexities : (string * int) list)
    ~(hls_cache : (string, unit) Hashtbl.t) ~cells ~luts : breakdown =
  let kernel_costs =
    List.map
      (fun (kname, complexity) ->
        let reused = Hashtbl.mem hls_cache kname in
        if not reused then Hashtbl.replace hls_cache kname ();
        { kname; complexity; reused })
      kernel_complexities
  in
  estimate_costed ~arch ~dsl_lines ~kernel_costs ~cells ~luts

let pp fmt b =
  Format.fprintf fmt "%s:" b.arch;
  List.iter (fun (p, s) -> Format.fprintf fmt " %s=%.0fs" (phase_name p) s) b.seconds;
  Format.fprintf fmt " total=%.0fs" (total b)

(** Runtime model of the commercial tools the flow coordinates.

    The paper's Figure 9 reports the wall-clock breakdown of generating the
    four case-study architectures with Vivado HLS + Vivado 2014.2 on a
    workstation (42 minutes in total; ~6 s to compile the Scala task graph;
    ~50 s to generate the Vivado project; HLS runs once per function). We
    cannot run Xilinx tools in this environment, so phase durations come
    from a deterministic cost model with those anchor points: HLS time grows
    with kernel complexity, synthesis/implementation time with the LUT count
    of the integrated system. *)

type phase = Scala_compile | Hls | Project_gen | Synthesis | Implementation | Bitgen

let phase_name = function
  | Scala_compile -> "SCALA"
  | Hls -> "HLS"
  | Project_gen -> "PROJECT"
  | Synthesis -> "SYNTH"
  | Implementation -> "IMPL"
  | Bitgen -> "BITGEN"

let all_phases = [ Scala_compile; Hls; Project_gen; Synthesis; Implementation; Bitgen ]

type breakdown = {
  arch : string;
  seconds : (phase * float) list;
}

let total b = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 b.seconds

(* Anchors from Section VI.C. *)
let scala_time ~dsl_lines = 6.0 +. (0.05 *. float_of_int dsl_lines)

let hls_time_per_kernel ~complexity = 24.0 +. (1.1 *. float_of_int complexity)

let project_gen_time ~cells = 26.0 +. (2.4 *. float_of_int cells)

let synthesis_time ~luts = 85.0 +. (0.011 *. float_of_int luts)

let implementation_time ~luts = 130.0 +. (0.017 *. float_of_int luts)

let bitgen_time = 42.0

(* [hls_cache] models the paper's reuse: "the generation of the hardware
   cores is done only once for each function" — kernels already synthesized
   for a previous architecture cost nothing. *)
let estimate ~arch ~dsl_lines ~(kernel_complexities : (string * int) list)
    ~(hls_cache : (string, unit) Hashtbl.t) ~cells ~luts : breakdown =
  let hls =
    List.fold_left
      (fun acc (name, complexity) ->
        if Hashtbl.mem hls_cache name then acc
        else begin
          Hashtbl.replace hls_cache name ();
          acc +. hls_time_per_kernel ~complexity
        end)
      0.0 kernel_complexities
  in
  {
    arch;
    seconds =
      [
        (Scala_compile, scala_time ~dsl_lines);
        (Hls, hls);
        (Project_gen, project_gen_time ~cells);
        (Synthesis, synthesis_time ~luts);
        (Implementation, implementation_time ~luts);
        (Bitgen, bitgen_time);
      ];
  }

let pp fmt b =
  Format.fprintf fmt "%s:" b.arch;
  List.iter (fun (p, s) -> Format.fprintf fmt " %s=%.0fs" (phase_name p) s) b.seconds;
  Format.fprintf fmt " total=%.0fs" (total b)

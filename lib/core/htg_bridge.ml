(** HTG-to-DSL elaboration: the mapping of Section III.

    The paper's flow (Fig. 3) starts from a partitioned two-level HTG and
    derives the DSL description: software nodes disappear, hardware task
    nodes become AXI-Lite accelerators attached to the system bus, and each
    hardware phase contributes one AXI-Stream accelerator per dataflow actor
    with the phase's internal links mapped to direct stream links and its
    boundary ports routed through 'soc (a DMA channel).

    [to_spec] automates that mapping. Running it on the Fig. 1 HTG yields
    exactly the Fig. 4 architecture — the paper's own worked example — which
    the test suite checks structurally. *)

module H = Soc_htg.Htg

(* Hardware task nodes carry no port information in the HTG; the caller
   supplies their AXI-Lite register interface. The default matches the
   paper's ADD/MULT examples: two operands and a return value. *)
let default_lite_ports (_ : string) = [ "A"; "B"; "return_" ]

type error =
  | Sw_phase_with_hw_actors of string
  | No_hardware_nodes

let pp_error fmt = function
  | Sw_phase_with_hw_actors p ->
    Format.fprintf fmt "phase %S is mapped to software but would contribute accelerators" p
  | No_hardware_nodes -> Format.fprintf fmt "the HTG maps every node to software"

let to_spec ?(lite_ports = default_lite_ports) ?(validate = true) (g : H.t) : Spec.t =
  let nodes = ref [] and edges = ref [] in
  let add_node n = nodes := n :: !nodes in
  let add_edge e = edges := e :: !edges in
  List.iter
    (fun (n : H.node) ->
      match (n.H.kind, n.H.mapping) with
      | H.Task, H.Sw | H.Phase _, H.Sw -> () (* software: stays on the GPP *)
      | H.Task, H.Hw ->
        (* Simple node: AXI-Lite interface, parameter copy by the GPP. *)
        add_node
          (Spec.make_node n.H.name
             (List.map (fun p -> (p, Spec.Lite)) (lite_ports n.H.name)));
        add_edge (Spec.connect_edge n.H.name)
      | H.Phase df, H.Hw ->
        (* One stream accelerator per actor. *)
        List.iter
          (fun (a : H.actor) ->
            add_node
              (Spec.make_node a.H.actor_name
                 (List.map (fun (p, _) -> (p, Spec.Stream)) a.H.inputs
                 @ List.map (fun (p, _) -> (p, Spec.Stream)) a.H.outputs)))
          df.H.actors;
        (* Boundary inputs are fed by the system (DMA), then internal links,
           then boundary outputs drain to the system. *)
        List.iter
          (fun (actor, port) -> add_edge (Spec.link_edge Spec.Soc (Spec.Port (actor, port))))
          (H.dataflow_inputs df);
        List.iter
          (fun (l : H.stream_link) ->
            add_edge
              (Spec.link_edge
                 (Spec.Port (l.H.src_actor, l.H.src_port))
                 (Spec.Port (l.H.dst_actor, l.H.dst_port))))
          df.H.links;
        List.iter
          (fun (actor, port) -> add_edge (Spec.link_edge (Spec.Port (actor, port)) Spec.Soc))
          (H.dataflow_outputs df))
    g.H.nodes;
  let spec =
    { Spec.design_name = g.H.graph_name; nodes = List.rev !nodes; edges = List.rev !edges }
  in
  if validate then Spec.validate_exn spec;
  spec

(* Sanity report: which HTG nodes were dropped as software. *)
let software_residual (g : H.t) =
  List.filter_map
    (fun (n : H.node) -> if n.H.mapping = H.Sw then Some n.H.name else None)
    g.H.nodes

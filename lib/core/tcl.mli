(** Tcl script generation for Vivado Design Suite — the text a designer
    would otherwise write by hand (the Section VI.C comparison). Two
    backend versions mirror the paper's 2014.2 -> 2015.3 port: IP versions
    and a handful of commands differ, the rest is shared. *)

type version = V2014_2 | V2015_3

val version_string : version -> string

val sanitize : string -> string
(** Tcl/Verilog identifier sanitization used for cell names. *)

type dma_plan = {
  dma_name : string;
  read_side : (string * string) option;  (** 'soc -> (node, port) *)
  write_side : (string * string) option;
}

val dma_plans : Spec.t -> dma_plan list
(** One AXI DMA core per 'soc-crossing stream link. *)

val generate : version:version -> Spec.t -> string

type backend_diff = {
  total_commands : int;
  changed_commands : int;
  changed_fraction : float;
}

val diff_backends : Spec.t -> backend_diff
(** Command-level diff between the two versions' output for one spec: the
    maintainability metric of Section VI.C. *)

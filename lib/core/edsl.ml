(** Embedded DSL.

    The paper's key idea is that every DSL keyword is an executable function
    (Section IV-B, Fig. 6): "executing" the task-graph description drives
    the flow. This module reproduces that embedding in OCaml. Keywords are
    functions over a mutable builder; sections are enforced at runtime
    exactly like the Scala original (calling [node] outside a
    [nodes]...[end_nodes] section is an error), and every keyword appends an
    entry to an execution trace that the flow coordinator consumes.

    {[
      let fig4 =
        design "fig4" @@ fun tg ->
          nodes tg;
            node tg "MUL" |> i "A" |> i "B" |> i "return" |> end_;
            node tg "GAUSS" |> is "in" |> is "out" |> end_;
          end_nodes tg;
          edges tg;
            connect tg "MUL";
            link tg soc ~to_:(port "GAUSS" "in");
            link tg (port "GAUSS" "out") ~to_:soc;
          end_edges tg
    ]} *)

exception Syntax of string

(* What the "execution" of each keyword performed, mirroring Fig. 6. *)
type trace_step =
  | Created_project of string
  | Created_node of string (* new Vivado HLS project for the node *)
  | Added_interface of string * string * Spec.port_kind
  | Synthesized_node of string (* [end] triggers HLS *)
  | Connected_lite of string
  | Created_link of Spec.endpoint * Spec.endpoint
  | Executed_integration (* [end_edges] runs the Vivado project *)

type section = Preamble | In_nodes | In_edges | Finished

type t = {
  mutable section : section;
  mutable nodes_acc : Spec.node_spec list; (* reversed *)
  mutable edges_acc : Spec.edge_spec list; (* reversed *)
  mutable trace : trace_step list; (* reversed *)
  mutable nodes_done : bool;
  mutable edges_done : bool;
}

(* A node under construction: [i]/[is] chain onto it, [end_] seals it. *)
type open_node = {
  builder : t;
  oname : string;
  mutable ports : (string * Spec.port_kind) list;
}

let step t s = t.trace <- s :: t.trace

let require t section what =
  if t.section <> section then raise (Syntax ("misplaced " ^ what))

let nodes t =
  require t Preamble "tg nodes";
  if t.nodes_done then raise (Syntax "duplicate nodes section");
  t.section <- In_nodes

let node t name =
  require t In_nodes "tg node";
  if name = "" then raise (Syntax "empty node name");
  step t (Created_node name);
  { builder = t; oname = name; ports = [] }

let i name (on : open_node) =
  step on.builder (Added_interface (on.oname, name, Spec.Lite));
  on.ports <- (name, Spec.Lite) :: on.ports;
  on

let is name (on : open_node) =
  step on.builder (Added_interface (on.oname, name, Spec.Stream));
  on.ports <- (name, Spec.Stream) :: on.ports;
  on

(* Sealing a node is the point where the paper's tool invokes Vivado HLS on
   the node's C source. *)
let end_ (on : open_node) =
  let t = on.builder in
  require t In_nodes "end";
  if on.ports = [] then raise (Syntax "node declared without interfaces");
  t.nodes_acc <- Spec.make_node on.oname (List.rev on.ports) :: t.nodes_acc;
  step t (Synthesized_node on.oname)

let end_nodes t =
  require t In_nodes "tg end_nodes";
  t.nodes_done <- true;
  t.section <- Preamble

let edges t =
  if not t.nodes_done then raise (Syntax "edges section before nodes section");
  require t Preamble "tg edges";
  if t.edges_done then raise (Syntax "duplicate edges section");
  t.section <- In_edges

let soc = Spec.Soc
let port n p = Spec.Port (n, p)

let connect t name =
  require t In_edges "tg connect";
  t.edges_acc <- Spec.connect_edge name :: t.edges_acc;
  step t (Connected_lite name)

let link t src ~to_ =
  require t In_edges "tg link";
  t.edges_acc <- Spec.link_edge src to_ :: t.edges_acc;
  step t (Created_link (src, to_))

let end_edges t =
  require t In_edges "tg end_edges";
  t.edges_done <- true;
  t.section <- Finished;
  step t Executed_integration

(* Execute a description and elaborate it into a validated spec. *)
let design ?(validate = true) name body =
  let t =
    {
      section = Preamble;
      nodes_acc = [];
      edges_acc = [];
      trace = [ Created_project name ];
      nodes_done = false;
      edges_done = false;
    }
  in
  body t;
  if not t.nodes_done then raise (Syntax "missing nodes section");
  if not t.edges_done then raise (Syntax "missing edges section");
  let spec =
    {
      Spec.design_name = name;
      nodes = List.rev t.nodes_acc;
      edges = List.rev t.edges_acc;
    }
  in
  if validate then Spec.validate_exn spec;
  spec

(* The execution trace of the last keyword run, for a builder captured by
   the caller before [design] returned. *)
let trace t = List.rev t.trace

(* Run a description and return both the spec and the keyword trace. *)
let design_with_trace ?(validate = true) name body =
  let captured = ref [] in
  let spec =
    design ~validate name (fun t ->
        body t;
        captured := trace t)
  in
  (spec, !captured)

let pp_trace_step fmt = function
  | Created_project n -> Format.fprintf fmt "create Vivado project for %S" n
  | Created_node n -> Format.fprintf fmt "create Vivado HLS project for node %S" n
  | Added_interface (_, p, k) ->
    Format.fprintf fmt "add %a interface %S (directives file updated)" Spec.pp_port_kind k p
  | Synthesized_node n -> Format.fprintf fmt "run HLS synthesis for node %S" n
  | Connected_lite n -> Format.fprintf fmt "connect %S AXI-Lite interface to system bus" n
  | Created_link (a, b) ->
    Format.fprintf fmt "tcl: connect stream %a -> %a" Spec.pp_endpoint a Spec.pp_endpoint b
  | Executed_integration -> Format.fprintf fmt "execute Vivado tcl up to bitstream generation"

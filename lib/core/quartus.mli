(** Altera/Intel Quartus backend, demonstrating the extensibility claim of
    Section II-C: the same validated spec elaborates to a Qsys system
    script plus the quartus_sh compile flow (Cyclone V SoC, HPS bridge,
    one mSGDMA per 'soc-crossing stream, Avalon-ST internal links). *)

val generate : Spec.t -> string

type comparison = { xilinx_lines : int; altera_lines : int }

val compare_backends : Spec.t -> comparison
(** Non-blank command counts of the two vendor scripts for one spec. *)

(* Two more application domains on the same DSL and platform:

   1. an XTEA crypto-offload SoC — encrypt and decrypt accelerators chained
      into a loopback pipeline, with the 128-bit key delivered over
      AXI-Lite like a real crypto engine's key slots;
   2. a DSP chain — a 5-tap binomial smoother feeding a differentiator,
      both as streaming FIR accelerators with coefficient BRAMs.

   Run with: dune exec examples/crypto_dsp.exe *)

module Exec = Soc_platform.Executive

let crypto () =
  print_endline "=== XTEA crypto loopback SoC ===";
  print_string (Soc_core.Printer.to_source Soc_apps.Xtea.loopback_spec);
  let key = [| 0x1BADB002; 0xCAFEF00D; 0x8BADF00D; 0xDEADC0DE |] in
  let blocks = 24 in
  let cycles, ok, build = Soc_apps.Xtea.run_loopback ~blocks ~key () in
  Printf.printf "\n%d blocks encrypted and decrypted in fabric: bit-exact=%b\n" blocks ok;
  Printf.printf "cycles=%d  resources: %s\n" cycles
    (Format.asprintf "%a" Soc_hls.Report.pp_usage build.Soc_core.Flow.resources);
  (* Show that the ciphertext really is XTEA: compare one block against the
     golden model. *)
  let c0, c1 = Soc_apps.Xtea.Golden.encrypt_block ~key (1, 2) in
  Printf.printf "golden XTEA of block (1,2): %08x %08x\n\n" c0 c1

let dsp () =
  print_endline "=== FIR smoother -> differentiator pipeline ===";
  print_string (Soc_core.Printer.to_source Soc_apps.Fir.pipeline_spec);
  let samples = 96 in
  let build =
    Soc_core.Flow.build Soc_apps.Fir.pipeline_spec
      ~kernels:(Soc_apps.Fir.pipeline_kernels ~samples)
  in
  let live = Soc_core.Flow.instantiate build in
  let exec = live.Soc_core.Flow.exec in
  (* A noisy ramp with a step: smoothing then differencing finds the step. *)
  let rng = Soc_util.Rng.create 31 in
  let input =
    List.init samples (fun i ->
        (if i < samples / 2 then 100 else 400) + Soc_util.Rng.int rng 11)
  in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 (Array.of_list input);
  Exec.start_accel exec "smooth";
  Exec.start_accel exec "diff";
  Exec.start_read_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"diff" ~port:"y")
    ~addr:1024 ~len:samples;
  Exec.start_write_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"smooth" ~port:"x")
    ~addr:0 ~len:samples;
  Exec.run_phase exec ~accels:[ "smooth"; "diff" ];
  let out = Soc_axi.Dram.read_block (Exec.dram exec) ~addr:1024 ~len:samples in
  let golden = Soc_apps.Fir.golden_pipeline input in
  Printf.printf "\n%d samples through smooth->diff: bit-exact=%b (%d cycles)\n" samples
    (Array.to_list out = golden)
    (Exec.elapsed_cycles exec);
  (* The differentiated smoothed signal peaks at the step location. *)
  let peak_at = ref 0 and peak = ref 0 in
  Array.iteri
    (fun i v ->
      let v = Soc_util.Bits.to_signed ~width:32 v in
      if v > !peak then begin
        peak := v;
        peak_at := i
      end)
    out;
  Printf.printf "edge detected at sample %d (true step at %d)\n" !peak_at (samples / 2)

let () =
  crypto ();
  dsp ()

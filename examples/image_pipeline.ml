(* The Fig. 4 running example: ADD and MULT attached over AXI-Lite, and a
   GAUSS -> EDGE image pipeline over AXI-Stream, generated from the DSL and
   exercised on the simulated Zedboard. Writes before/after PGM images.

   Run with: dune exec examples/image_pipeline.exe *)

module Exec = Soc_platform.Executive

let () =
  let width = 48 and height = 48 in
  let n = width * height in
  let spec = Soc_apps.Graphs.fig4_spec in
  print_endline "--- Fig. 4 system (DSL) ---";
  print_string (Soc_core.Printer.to_source spec);

  let build =
    Soc_core.Flow.build spec ~kernels:(Soc_apps.Graphs.fig4_kernels ~width ~height)
  in
  print_endline "\n--- block diagram (Fig. 10 style) ---";
  print_string (Soc_core.Block_diagram.to_ascii build);
  List.iter
    (fun (core, u) ->
      Printf.printf "%-6s %s\n" core (Format.asprintf "%a" Soc_hls.Report.pp_usage u))
    build.Soc_core.Flow.resources_by_core;

  let live = Soc_core.Flow.instantiate ~fifo_depth:(n + 8) build in
  let exec = live.Soc_core.Flow.exec in

  (* AXI-Lite: configure and run ADD and MULT from the "application". *)
  Exec.set_arg exec ~accel:"ADD" ~port:"A" 20;
  Exec.set_arg exec ~accel:"ADD" ~port:"B" 22;
  Exec.start_accel exec "ADD";
  Exec.wait_accel exec "ADD";
  Printf.printf "\nADD(20, 22) over AXI-Lite = %d\n"
    (Exec.get_arg exec ~accel:"ADD" ~port:"return_");
  Exec.set_arg exec ~accel:"MUL" ~port:"A" 6;
  Exec.set_arg exec ~accel:"MUL" ~port:"B" 7;
  Exec.start_accel exec "MUL";
  Exec.wait_accel exec "MUL";
  Printf.printf "MUL(6, 7) over AXI-Lite = %d\n"
    (Exec.get_arg exec ~accel:"MUL" ~port:"return_");

  (* AXI-Stream: push a synthetic grayscale image through GAUSS -> EDGE. *)
  let rgb = Soc_apps.Image.synthetic_rgb ~width ~height () in
  let gray = Soc_apps.Image.rgb_to_gray rgb in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 gray.Soc_apps.Image.pixels;
  let t0 = Exec.elapsed_cycles exec in
  Exec.start_accel exec "GAUSS";
  Exec.start_accel exec "EDGE";
  Exec.start_read_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"EDGE" ~port:"out")
    ~addr:(2 * n) ~len:n;
  Exec.start_write_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"GAUSS" ~port:"in")
    ~addr:0 ~len:n;
  Exec.run_phase exec ~accels:[ "GAUSS"; "EDGE" ];
  let cycles = Exec.elapsed_cycles exec - t0 in
  let out = Soc_axi.Dram.read_block (Exec.dram exec) ~addr:(2 * n) ~len:n in
  let edges = { Soc_apps.Image.width; height; pixels = out } in

  (* Validate against the golden filters. *)
  let expected =
    Soc_apps.Filters.Golden.edge ~width ~height
      (Soc_apps.Filters.Golden.gauss ~width ~height gray.Soc_apps.Image.pixels)
  in
  assert (out = expected);
  Printf.printf "\nGAUSS->EDGE pipeline: %d pixels in %d PL cycles (%.1f us), bit-exact\n"
    n cycles
    (Soc_platform.Config.pl_cycles_to_us (Exec.config exec) cycles);

  Soc_apps.Image.write_pgm_file "pipeline_input.pgm" gray;
  Soc_apps.Image.write_pgm_file "pipeline_edges.pgm" edges;
  print_endline "wrote pipeline_input.pgm and pipeline_edges.pgm"

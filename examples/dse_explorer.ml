(* Design-space exploration over all 16 HW/SW partitions of the Otsu
   pipeline — the extension the paper leaves as future work (Section II-C).
   Every evaluated point is functionally verified against the golden model;
   the Pareto front on (latency, LUT) and a greedy hill-climbing trajectory
   are reported.

   Run with: dune exec examples/dse_explorer.exe *)

let () =
  let width = 32 and height = 32 in
  Printf.printf "Exhaustive DSE over 2^4 partitions (image %dx%d)\n\n" width height;
  let r = Soc_dse.Explore.exhaustive ~width ~height () in
  let front = Soc_dse.Explore.pareto r.Soc_dse.Explore.points in
  let on_front p =
    List.exists
      (fun (q : Soc_dse.Runner.point) -> q.Soc_dse.Runner.partition = p)
      front
  in
  let table =
    Soc_util.Table.create ~title:"Partition sweep (G=grayScale H=histogram O=otsuMethod B=binarization)"
      ~aligns:
        [ Soc_util.Table.Left; Soc_util.Table.Right; Soc_util.Table.Right;
          Soc_util.Table.Right; Soc_util.Table.Right; Soc_util.Table.Center ]
      [ "GHOB"; "cycles"; "us"; "LUT"; "gen time (s)"; "Pareto" ]
  in
  List.iter
    (fun (p : Soc_dse.Runner.point) ->
      Soc_util.Table.add_row table
        [
          Soc_dse.Partition.signature p.Soc_dse.Runner.partition;
          string_of_int p.Soc_dse.Runner.cycles;
          Printf.sprintf "%.1f" p.Soc_dse.Runner.microseconds;
          string_of_int p.Soc_dse.Runner.resources.Soc_hls.Report.lut;
          Printf.sprintf "%.0f" p.Soc_dse.Runner.tool_seconds;
          (if on_front p.Soc_dse.Runner.partition then "*" else "");
        ])
    r.Soc_dse.Explore.points;
  Soc_util.Table.print table;

  Printf.printf "\nGreedy exploration (speedup-per-LUT hill climbing):\n";
  let g = Soc_dse.Explore.greedy ~width ~height () in
  List.iter
    (fun (p : Soc_dse.Runner.point) ->
      Printf.printf "  %s  %7d cycles  %6d LUT\n"
        (Soc_dse.Partition.signature p.Soc_dse.Runner.partition)
        p.Soc_dse.Runner.cycles p.Soc_dse.Runner.resources.Soc_hls.Report.lut)
    g.Soc_dse.Explore.points;
  Printf.printf "greedy evaluated %d points vs %d exhaustive\n"
    g.Soc_dse.Explore.evaluations r.Soc_dse.Explore.evaluations;

  (* The greedy endpoint must lie on the exhaustive Pareto front. *)
  let final = List.nth g.Soc_dse.Explore.points (List.length g.Soc_dse.Explore.points - 1) in
  Printf.printf "greedy endpoint %s on exhaustive Pareto front: %b\n"
    (Soc_dse.Partition.signature final.Soc_dse.Runner.partition)
    (on_front final.Soc_dse.Runner.partition)

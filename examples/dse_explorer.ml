(* Population-scale autotuning over the Otsu design space — HW/SW
   partition x FIFO depth x HLS schedule x functional-unit allocation —
   through the Soc_tune subsystem: candidates are gated by the static
   analyzer, priced in farm batches with content-hash dedup, verified
   bit-exactly against the golden model, and ranked on a 5-objective
   Pareto frontier (latency, LUT, FF, BRAM, DSP).

   Run with: dune exec examples/dse_explorer.exe *)

module Tuner = Soc_dse.Tuner
module Search = Soc_tune.Search

let run_strategy ~cache name strategy =
  Printf.printf "== %s ==\n%!" name;
  let opts = { Tuner.default_options with Tuner.strategy } in
  let o =
    Tuner.run ~cache
      ~on_round:(fun (p : Search.progress) ->
        Printf.printf "  round %d: %d evaluated, frontier %d\n%!" p.Search.round
          p.Search.evaluated
          (List.length p.Search.frontier))
      opts
  in
  let r = o.Tuner.search in
  Soc_util.Table.print (Soc_tune.Render.table r);
  Printf.printf "%s\n" (Soc_tune.Render.summary r);
  List.iter
    (fun (k, msg) -> Printf.printf "  FAILED %s: %s\n" k msg)
    r.Search.failures;
  Printf.printf "  farm: %d batches, %d HLS requests, %d real engine runs\n\n%!"
    o.Tuner.batches o.Tuner.hls_requests o.Tuner.engine_invocations;
  o

let () =
  (* One shared cache across strategies: later sweeps re-price candidates
     the earlier ones already synthesized without new engine runs. *)
  let cache = Soc_farm.Cache.create () in
  let _ = run_strategy ~cache "greedy hill-climb" Search.Greedy in
  let ev =
    run_strategy ~cache "evolutionary (population 8, 4 generations)"
      (Search.Evolve { population = 8; generations = 4 })
  in
  match Soc_tune.Render.winner ev.Tuner.search with
  | None -> print_endline "no feasible point found"
  | Some w ->
    Printf.printf "winner: %s  %.1f us  %d LUT\n" w.Search.key w.Search.objectives.(0)
      w.Search.usage.Soc_hls.Report.lut;
    if w.Search.dsl <> "" then begin
      print_endline "winning spec (DSL):";
      print_string w.Search.dsl
    end

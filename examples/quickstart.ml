(* Quickstart: the complete journey for one tiny accelerator.

   1. write a kernel (the "synthesizable C");
   2. describe the system in the DSL (both embeddings are shown);
   3. "execute" the description: HLS + integration + software generation;
   4. boot the simulated Zedboard and call the accelerator through the
      generated driver interface.

   Run with: dune exec examples/quickstart.exe *)

open Soc_kernel.Ast.Build
module Exec = Soc_platform.Executive

(* Step 1 -- a streaming kernel: y_i = a*x_i + b over n beats, with the
   coefficients delivered over AXI-Lite. *)
let saxb_kernel n =
  {
    Soc_kernel.Ast.kname = "saxb";
    ports =
      [
        in_stream "x" Soc_kernel.Ty.U32;
        out_stream "y" Soc_kernel.Ty.U32;
      ];
    locals = [ ("i", Soc_kernel.Ty.U32); ("t", Soc_kernel.Ty.U32) ];
    arrays = [];
    body =
      [
        for_ "i" ~from:(int 0) ~below:(int n)
          [ pop "t" "x"; push "y" ((v "t" *: int 3) +: int 7) ];
      ];
  }

let () =
  let n = 64 in

  (* Step 2a -- embedded DSL, keywords as executable functions. *)
  let spec =
    let open Soc_core.Edsl in
    design "quickstart" @@ fun tg ->
    nodes tg;
    node tg "saxb" |> is "x" |> is "y" |> end_;
    end_nodes tg;
    edges tg;
    link tg soc ~to_:(port "saxb" "x");
    link tg (port "saxb" "y") ~to_:soc;
    end_edges tg
  in

  (* Step 2b -- the same system in the external concrete syntax. *)
  let source = Soc_core.Printer.to_source spec in
  print_endline "--- DSL source (external syntax) ---";
  print_string source;
  assert (Soc_core.Spec.strip_spans (Soc_core.Parser.parse source) = spec);

  (* Step 3 -- execute the flow: HLS, Tcl, device tree, driver API. *)
  let build = Soc_core.Flow.build spec ~kernels:[ ("saxb", saxb_kernel n) ] in
  Printf.printf "\n--- flow outputs ---\n";
  Printf.printf "resources: %s\n"
    (Format.asprintf "%a" Soc_hls.Report.pp_usage build.Soc_core.Flow.resources);
  Printf.printf "bitstream artifact: %s\n" build.Soc_core.Flow.bitstream;
  Printf.printf "generated tcl: %d lines; device tree: %d lines; C API: %d lines\n"
    (Soc_util.Metrics.of_string build.Soc_core.Flow.tcl_2015).Soc_util.Metrics.lines
    (Soc_util.Metrics.of_string build.Soc_core.Flow.sw.Soc_core.Swgen.device_tree)
      .Soc_util.Metrics.lines
    (Soc_util.Metrics.of_string build.Soc_core.Flow.sw.Soc_core.Swgen.api_header)
      .Soc_util.Metrics.lines;
  Printf.printf "estimated tool time: %s\n"
    (Format.asprintf "%a" Soc_core.Toolsim.pp build.Soc_core.Flow.tool_times);

  (* Step 4 -- boot the simulated board and use the accelerator. *)
  let live = Soc_core.Flow.instantiate build in
  let exec = live.Soc_core.Flow.exec in
  let input = Array.init n (fun i -> i) in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0x100 input;
  Exec.start_accel exec "saxb";
  Exec.start_read_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"saxb" ~port:"y")
    ~addr:0x800 ~len:n;
  Exec.start_write_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"saxb" ~port:"x")
    ~addr:0x100 ~len:n;
  Exec.run_phase exec ~accels:[ "saxb" ];
  let out = Soc_axi.Dram.read_block (Exec.dram exec) ~addr:0x800 ~len:n in
  Array.iteri (fun i y -> assert (y = (3 * i) + 7)) out;
  Printf.printf "\n--- simulated run ---\n";
  Printf.printf "64 beats through DMA -> saxb -> DMA in %d PL cycles (%.2f us)\n"
    (Exec.elapsed_cycles exec) (Exec.elapsed_us exec);
  Printf.printf "all %d results correct: y[i] = 3*i + 7\n" n

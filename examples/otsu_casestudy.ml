(* The Section VI case study: generate the four architectures of Table I
   from their DSL descriptions (Arch4 is the verbatim Listing 4 text), run
   each on the simulated Zedboard, and verify that all of them produce the
   same segmented image as the golden model (Fig. 7).

   Run with: dune exec examples/otsu_casestudy.exe *)

let () =
  let width = 48 and height = 48 in
  let golden_img, golden_thr = Soc_apps.Otsu_runner.golden ~width ~height () in
  Printf.printf "Otsu case study on a %dx%d synthetic scene (threshold %d)\n\n" width
    height golden_thr;

  print_endline "--- Listing 4 (Arch4) as parsed from the paper text ---";
  print_string
    (Soc_core.Printer.to_source (Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4));
  print_newline ();

  let sw = Soc_apps.Otsu_runner.run_software_only ~width ~height () in
  assert (Soc_apps.Image.equal sw.Soc_apps.Otsu_runner.output golden_img);

  let table =
    Soc_util.Table.create ~title:"Case study summary"
      ~aligns:[ Soc_util.Table.Left; Soc_util.Table.Left; Soc_util.Table.Right;
                Soc_util.Table.Right; Soc_util.Table.Right; Soc_util.Table.Right ]
      [ "Solution"; "HW functions"; "cycles"; "us"; "LUT"; "match" ]
  in
  Soc_util.Table.add_row table
    [ "SW"; "-"; string_of_int sw.Soc_apps.Otsu_runner.cycles;
      Printf.sprintf "%.1f" sw.Soc_apps.Otsu_runner.microseconds; "0"; "yes" ];
  List.iter
    (fun arch ->
      let r = Soc_apps.Otsu_runner.run_arch ~width ~height arch in
      let ok = Soc_apps.Image.equal r.Soc_apps.Otsu_runner.output golden_img in
      let lut =
        match r.Soc_apps.Otsu_runner.build with
        | Some b -> b.Soc_core.Flow.resources.Soc_hls.Report.lut
        | None -> 0
      in
      Soc_util.Table.add_row table
        [
          r.Soc_apps.Otsu_runner.label;
          String.concat "," (Soc_apps.Graphs.hw_functions arch);
          string_of_int r.Soc_apps.Otsu_runner.cycles;
          Printf.sprintf "%.1f" r.Soc_apps.Otsu_runner.microseconds;
          string_of_int lut;
          (if ok then "yes" else "NO");
        ];
      if arch = Soc_apps.Graphs.Arch4 then
        Soc_apps.Image.write_pgm_file "otsu_segmented.pgm"
          r.Soc_apps.Otsu_runner.output)
    Soc_apps.Graphs.all_archs;
  Soc_util.Table.print table;
  print_endline "\nwrote otsu_segmented.pgm (the Fig. 7b equivalent)"

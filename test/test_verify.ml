(* Tests for the RTL-level static verifier: the netlist lint (RTL50x)
   and the tape translation validator (RTL51x) that runs after lowering,
   after every optimizer pass and on every cache load. *)

module NL = Soc_rtl.Netlist
module Sim = Soc_rtl.Sim
module Lint = Soc_rtl.Lint
module Reader = Soc_rtl.Netlist_reader
module Tape = Soc_rtl_compile.Tape
module Opt = Soc_rtl_compile.Opt
module Csim = Soc_rtl_compile.Csim
module Verify = Soc_rtl_compile.Verify
module Engine = Soc_rtl_compile.Engine
module Diag = Soc_util.Diag

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let codes ds = List.map (fun (d : Diag.t) -> d.Diag.code) ds

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Netlist lint                                                        *)
(* ------------------------------------------------------------------ *)

(* The same shapes as the examples/broken corpus, via the .ntl reader —
   one stone for both the reader and the lint. *)
let test_lint_corpus_shapes () =
  let expect source code =
    let ds = Lint.check (Reader.parse source) in
    if not (List.mem code (codes ds)) then
      Alcotest.failf "expected %s, got [%s]" code (String.concat "; " (codes ds))
  in
  expect
    "module md\ninput a 8\ninput b 8\noutput y 8\nassign y (add a b)\nassign y (sub a b)\n"
    "RTL500";
  expect
    "module de\ninput d 8\noutput y 8\n\
     reg q 8 reset 0 enable (const 0 1) next (add d (const 1 8))\nassign y q\n"
    "RTL502";
  expect
    "module us\ninput go 1\noutput busy 1\n\
     reg state 2 reset 0 enable (const 1 1) next (mux go (const 1 2) state)\n\
     assign busy (eq state (const 2 2))\n"
    "RTL503";
  expect "module tr\noutput y 4\nassign y (const 300 4)\n" "RTL501";
  expect
    "module nw\ninput a 4\noutput y 8\n\
     mem m 16 8 rdata rd raddr (ref a) wen (const 0 1) waddr (ref a) wdata (const 0 8)\n\
     assign y rd\n"
    "RTL504";
  expect
    "module lp\noutput y 8\nwire a 8\nwire b 8\nassign a b\nassign b a\nassign y a\n"
    "RTL505"

let test_lint_hold_idiom_not_flagged () =
  (* enable = 0 with next = q is how the FSMD generator freezes a
     register after reset — RTL502 must not fire on it. *)
  let net = NL.create "hold" in
  let q =
    NL.register net ~reset_value:3 ~enable:NL.zero ~name:"q" ~width:8 (fun q ->
        NL.Ref q)
  in
  let o = NL.output net ~name:"y" ~width:8 in
  NL.assign net o (NL.Ref q);
  check (Alcotest.list Alcotest.string) "no findings" [] (codes (Lint.check net))

let test_lint_clean_on_generated () =
  let kernels = Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch1 ~width:8 ~height:8 in
  List.iter
    (fun (_, k) ->
      let accel = Soc_hls.Engine.synthesize k in
      let ds = Lint.check accel.Soc_hls.Engine.fsmd.netlist in
      if ds <> [] then
        Alcotest.failf "%s: generated netlist not lint-clean: %s"
          k.Soc_kernel.Ast.kname
          (String.concat "; " (List.map (fun d -> Diag.to_string d) ds)))
    kernels

let test_reader_rejects_garbage () =
  let reject s =
    match Reader.parse s with
    | exception Reader.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" s
  in
  reject "";
  reject "wire x 8\n" (* no module *);
  reject "module m\nfrob x\n";
  reject "module m\nwire x\n" (* truncated statement *);
  reject "module m\nwire x 8\nassign x (add x\n";
  reject "module m\nwire x 8\nassign x (mumble x x)\n";
  reject "module m\nwire x 8\nwire x 8\n"

(* The flow refuses to integrate a netlist the lint rejects. *)
let test_flow_lint_gate () =
  let net = NL.create "bad" in
  let a = NL.input net ~name:"a" ~width:8 in
  let y = NL.output net ~name:"y" ~width:8 in
  NL.assign net y (NL.Ref a);
  NL.assign net y (NL.Ref a);
  (match Soc_core.Flow.lint_impl_netlist ~name:"bad" net with
  | exception Soc_core.Flow.Build_error msg ->
    check Alcotest.bool "names the code" true (contains ~sub:"RTL500" msg)
  | () -> Alcotest.fail "expected Build_error from the lint gate");
  let ok = NL.create "ok" in
  let a = NL.input ok ~name:"a" ~width:8 in
  let y = NL.output ok ~name:"y" ~width:8 in
  NL.assign ok y (NL.Ref a);
  Soc_core.Flow.lint_impl_netlist ~name:"ok" ok

(* ------------------------------------------------------------------ *)
(* Tape translation validation                                         *)
(* ------------------------------------------------------------------ *)

let test_verify_clean_on_generated () =
  let kernels = Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch1 ~width:8 ~height:8 in
  List.iter
    (fun (_, k) ->
      let accel = Soc_hls.Engine.synthesize k in
      (* compile_tape re-checks after lowering and after every pass. *)
      ignore (Csim.compile_tape accel.Soc_hls.Engine.fsmd.netlist))
    kernels

(* Every optimizer pass preserves tape well-formedness on random
   netlists — the per-pass checkpoint is exactly the production hook. *)
let test_passes_preserve_verification =
  QCheck.Test.make ~count:40 ~name:"optimizer passes preserve tape verification"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let net, _ = Test_csim.random_netlist seed in
      let tape = Tape.lower net in
      Verify.check ~stage:"lower" ~net tape;
      ignore (Opt.run ~checkpoint:(fun stage t -> Verify.check ~stage ~net t) tape);
      true)

(* Seeded structural mutations: every class [Verify.mutate] generates
   violates an invariant, so every mutation must be caught. *)
let test_mutations_caught =
  QCheck.Test.make ~count:60 ~name:"seeded tape mutations are caught"
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let net, _ = Test_csim.random_netlist (seed * 7 + 1) in
      let tape = Opt.run (Tape.lower net) in
      let mutated, desc = Verify.mutate ~seed tape in
      match Verify.check_result ~net mutated with
      | Error _ -> true
      | Ok () -> QCheck.Test.fail_reportf "mutation not caught: %s" desc)

(* The complement: a structurally valid edit the verifier deliberately
   does not reject (retargeting a copy's unread [b]/[c] operands at an
   arbitrary in-range slot — bounds are checked on every field, but
   def-before-use only on the fields the op reads) must also be
   semantically unobservable — the verifier's blind spot is exactly the
   set of edits that change nothing. *)
let test_benign_mutation_unobservable () =
  let net = NL.create "benign" in
  let x = NL.input net ~name:"x" ~width:16 in
  let y = NL.output net ~name:"y" ~width:16 in
  NL.assign net y (NL.Ref x);
  let tape = Opt.run (Tape.lower net) in
  let t' = Verify.copy_tape tape in
  let copies = ref 0 in
  Array.iteri
    (fun i (ins : Tape.instr) ->
      if ins.Tape.op = Tape.op_copy then begin
        incr copies;
        t'.Tape.settle.(i) <- { ins with b = t'.Tape.n_slots - 1; c = t'.Tape.n_slots - 1 }
      end)
    t'.Tape.settle;
  check Alcotest.bool "netlist has a copy to mutate" true (!copies > 0);
  (match Verify.check_result ~net t' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "benign mutation rejected: %s" e.Verify.v_reason);
  let sim = Sim.create net in
  let c = Csim.of_tape t' net in
  List.iter
    (fun v ->
      Sim.set_input sim x v;
      Csim.set_input c x v;
      Sim.settle sim;
      Csim.settle c;
      check Alcotest.int (Printf.sprintf "y(x=%d)" v) (Sim.value sim y) (Csim.value c y))
    [ 0; 1; 0xFFFF; 1234 ]

(* ------------------------------------------------------------------ *)
(* Engine integration: cache re-verification and the fault point       *)
(* ------------------------------------------------------------------ *)

(* A cache-loaded tape is re-verified before the unsafe dispatch loop
   sees it; a poisoned entry is rejected, recompiled over and does NOT
   degrade the netlist (the store was corrupt, not the compile). *)
let test_engine_cache_reverify () =
  Engine.clear_degraded ();
  let stored : Tape.t option ref = ref None in
  Fun.protect
    ~finally:(fun () ->
      Engine.install_tape_cache None;
      Engine.clear_degraded ())
    (fun () ->
      Engine.install_tape_cache
        (Some
           { Engine.tc_find = (fun ~key:_ -> !stored);
             tc_store = (fun ~key:_ t -> stored := Some t) });
      let net, _ = Test_csim.random_netlist 314 in
      ignore (Engine.create ~backend:Engine.Compiled net);
      check Alcotest.bool "tape stored" true (!stored <> None);
      let rv0 = Engine.reverify_count () and vr0 = Engine.verify_reject_count () in
      ignore (Engine.create ~backend:Engine.Compiled net);
      check Alcotest.int "warm load re-verified" (rv0 + 1) (Engine.reverify_count ());
      check Alcotest.int "clean tape not rejected" vr0 (Engine.verify_reject_count ());
      (* Poison the cached entry with a structural mutation. *)
      stored := Some (fst (Verify.mutate ~seed:9 (Option.get !stored)));
      let dk0 = Engine.degraded_key_count () and fb0 = Engine.fallback_count () in
      let e = Engine.create ~backend:Engine.Compiled net in
      check Alcotest.bool "recompiled, still on the compiled backend" true
        (Engine.backend_of e = Engine.Compiled);
      check Alcotest.int "rejection counted" (vr0 + 1) (Engine.verify_reject_count ());
      check Alcotest.int "cache corruption does not degrade the key" dk0
        (Engine.degraded_key_count ());
      check Alcotest.int "no interpreter fallback" fb0 (Engine.fallback_count ());
      (match Engine.verify_diags () with
      | d :: _ ->
        check Alcotest.bool "diag carries an RTL51x code" true
          (String.length d.Diag.code = 6 && String.sub d.Diag.code 0 5 = "RTL51");
        check Alcotest.bool "diag names the cache-load stage" true
          (contains ~sub:"cache-load" d.Diag.message)
      | [] -> Alcotest.fail "expected a verify diagnostic");
      (* The overwritten entry is clean again: next load passes. *)
      let vr1 = Engine.verify_reject_count () in
      ignore (Engine.create ~backend:Engine.Compiled net);
      check Alcotest.int "overwritten entry verifies" vr1 (Engine.verify_reject_count ()))

(* The service fault point corrupts one lowered tape in-flight: the
   verifier rejects it at stage "lower" and the engine rides the
   degradation ladder down to the interpreter. *)
let test_fault_corrupt_tape_degrades () =
  let module F = Soc_fault.Fault.Service in
  F.reset ();
  Engine.clear_degraded ();
  Engine.install_tape_cache None;
  Fun.protect
    ~finally:(fun () ->
      F.reset ();
      Engine.clear_degraded ())
    (fun () ->
      let net, inputs = Test_csim.random_netlist 2718 in
      let fb0 = Engine.fallback_count () and vr0 = Engine.verify_reject_count () in
      F.arm_corrupt_tape ~times:1 ~seed:5 ();
      let e = Engine.create ~backend:Engine.Compiled net in
      check Alcotest.int "fault point consumed" 1 (F.corrupt_hits ());
      check Alcotest.bool "degraded to the interpreter" true
        (Engine.backend_of e = Engine.Interp);
      check Alcotest.int "fallback counted" (fb0 + 1) (Engine.fallback_count ());
      check Alcotest.int "rejection counted" (vr0 + 1) (Engine.verify_reject_count ());
      (match Engine.verify_diags () with
      | d :: _ ->
        check Alcotest.bool "RTL51x diag" true
          (String.length d.Diag.code = 6 && String.sub d.Diag.code 0 5 = "RTL51")
      | [] -> Alcotest.fail "expected a verify diagnostic");
      check Alcotest.bool "bad key remembered" true (Engine.degraded_key_count () >= 1);
      (* The interpreter serves the same netlist. *)
      List.iter (fun i -> Engine.set_input e i 1) inputs;
      Engine.settle e)

let suite =
  [
    Alcotest.test_case "lint: corpus shapes detected via the .ntl reader" `Quick
      test_lint_corpus_shapes;
    Alcotest.test_case "lint: const-register hold idiom not flagged" `Quick
      test_lint_hold_idiom_not_flagged;
    Alcotest.test_case "lint: generated FSMD netlists are clean" `Quick
      test_lint_clean_on_generated;
    Alcotest.test_case "reader: rejects malformed .ntl sources" `Quick
      test_reader_rejects_garbage;
    Alcotest.test_case "flow: lint gate refuses an RTL500 netlist" `Quick
      test_flow_lint_gate;
    Alcotest.test_case "verify: clean after lowering and every pass (generated)" `Quick
      test_verify_clean_on_generated;
    qtest test_passes_preserve_verification;
    qtest test_mutations_caught;
    Alcotest.test_case "verify: benign mutation passes and is unobservable" `Quick
      test_benign_mutation_unobservable;
    Alcotest.test_case "engine: cache loads re-verified, poison recompiled" `Quick
      test_engine_cache_reverify;
    Alcotest.test_case "engine: corrupt-tape fault degrades to interpreter" `Quick
      test_fault_corrupt_tape_degrades;
  ]

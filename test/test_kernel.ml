(* Tests for the kernel IR: typechecking, CFG lowering and the reference
   interpreter. *)

open Soc_kernel
open Soc_kernel.Ast.Build

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let kernel ?(ports = []) ?(locals = []) ?(arrays = []) body =
  { Ast.kname = "k"; ports; locals; arrays; body }

let run_scalar ?(scalars = []) ?(streams = []) k port =
  let r = Interp.run_kernel ~scalars ~streams k in
  List.assoc port r.Interp.out_scalars

(* ------------------------------------------------------------------ *)
(* Typechecker                                                         *)
(* ------------------------------------------------------------------ *)

let has_error k pred =
  match Typecheck.check k with
  | Ok () -> false
  | Error es -> List.exists pred es

let test_tc_ok () =
  let k =
    kernel
      ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("t", Ty.U32) ]
      [ set "t" (v "a" +: int 1); set "r" (v "t") ]
  in
  check Alcotest.bool "ok" true (Typecheck.check k = Ok ())

let test_tc_unknown_var () =
  let k = kernel ~ports:[ out_scalar "r" Ty.U32 ] [ set "r" (v "nope") ] in
  check Alcotest.bool "unknown var" true
    (has_error k (function Typecheck.Unknown_variable "nope" -> true | _ -> false))

let test_tc_unknown_array () =
  let k = kernel ~ports:[ out_scalar "r" Ty.U32 ] [ set "r" (load "arr" (int 0)) ] in
  check Alcotest.bool "unknown array" true
    (has_error k (function Typecheck.Unknown_array "arr" -> true | _ -> false))

let test_tc_write_input_scalar () =
  let k = kernel ~ports:[ in_scalar "a" Ty.U32 ] [ set "a" (int 1) ] in
  check Alcotest.bool "assign to input" true
    (has_error k (function Typecheck.Assign_to_input_scalar "a" -> true | _ -> false))

let test_tc_stream_direction () =
  let k =
    kernel
      ~ports:[ in_stream "s" Ty.U32 ]
      ~locals:[ ("x", Ty.U32) ]
      [ push "s" (int 1) ]
  in
  check Alcotest.bool "write to input stream" true
    (has_error k (function Typecheck.Write_to_input "s" -> true | _ -> false));
  let k2 = kernel ~ports:[ out_stream "o" Ty.U32 ] ~locals:[ ("x", Ty.U32) ] [ pop "x" "o" ] in
  check Alcotest.bool "read from output stream" true
    (has_error k2 (function Typecheck.Read_from_output "o" -> true | _ -> false))

let test_tc_const_oob () =
  let k =
    kernel ~locals:[ ("x", Ty.U32) ] ~arrays:[ array "a" Ty.U32 4 ]
      [ set "x" (load "a" (int 4)) ]
  in
  check Alcotest.bool "constant index oob" true
    (has_error k (function
      | Typecheck.Constant_index_out_of_bounds ("a", 4, 4) -> true
      | _ -> false))

let test_tc_duplicate_names () =
  let k =
    kernel ~ports:[ in_scalar "x" Ty.U32 ] ~locals:[ ("x", Ty.U32) ] [ ]
  in
  check Alcotest.bool "duplicate" true
    (has_error k (function Typecheck.Duplicate_name "x" -> true | _ -> false))

let test_tc_bad_array () =
  let k = kernel ~arrays:[ array "a" Ty.U32 0 ] [] in
  check Alcotest.bool "bad size" true
    (has_error k (function Typecheck.Bad_array_size "a" -> true | _ -> false));
  let k2 = kernel ~arrays:[ array ~init:[| 1; 2 |] "a" Ty.U32 3 ] [] in
  check Alcotest.bool "bad init" true
    (has_error k2 (function Typecheck.Bad_init_length "a" -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  let k =
    kernel
      ~ports:[ in_scalar "a" Ty.U32; in_scalar "b" Ty.U32; out_scalar "r" Ty.U32 ]
      [ set "r" ((v "a" *: v "b") +: (v "a" -: v "b")) ]
  in
  check Alcotest.int "7*3 + 7-3" 25 (run_scalar ~scalars:[ ("a", 7); ("b", 3) ] k "r")

let test_signed_division () =
  (* -7 / 2 = -3 in C semantics (truncation toward zero). *)
  let k =
    kernel
      ~ports:[ out_scalar "r" Ty.I32 ]
      ~locals:[ ("x", Ty.I32) ]
      [ set "x" (int 0 -: int 7); set "r" (v "x" /: int 2) ]
  in
  check Alcotest.int "-7/2 (two's complement)" (Soc_util.Bits.of_signed ~width:32 (-3))
    (run_scalar k "r")

let test_type_truncation () =
  (* Storing 300 into a u8 local wraps to 44. *)
  let k =
    kernel ~ports:[ out_scalar "r" Ty.U32 ] ~locals:[ ("x", Ty.U8) ]
      [ set "x" (int 300); set "r" (v "x") ]
  in
  check Alcotest.int "u8 truncation" 44 (run_scalar k "r")

let test_if_else () =
  let k =
    kernel
      ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
      [ if_ (v "a" >: int 10) [ set "r" (int 1) ] [ set "r" (int 2) ] ]
  in
  check Alcotest.int "then" 1 (run_scalar ~scalars:[ ("a", 11) ] k "r");
  check Alcotest.int "else" 2 (run_scalar ~scalars:[ ("a", 10) ] k "r")

let test_while_loop () =
  (* Integer log2 by repeated halving. *)
  let k =
    kernel
      ~ports:[ in_scalar "n" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("x", Ty.U32); ("c", Ty.U32) ]
      [
        set "x" (v "n");
        set "c" (int 0);
        while_ (v "x" >: int 1) [ set "x" (v "x" >>: int 1); set "c" (v "c" +: int 1) ];
        set "r" (v "c");
      ]
  in
  check Alcotest.int "log2 1024" 10 (run_scalar ~scalars:[ ("n", 1024) ] k "r");
  check Alcotest.int "log2 1" 0 (run_scalar ~scalars:[ ("n", 1) ] k "r")

let test_for_loop_sum () =
  let k =
    kernel
      ~ports:[ in_scalar "n" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("acc", Ty.U32) ]
      [
        set "acc" (int 0);
        for_ "i" ~from:(int 0) ~below:(v "n") [ set "acc" (v "acc" +: v "i") ];
        set "r" (v "acc");
      ]
  in
  check Alcotest.int "sum 0..99" 4950 (run_scalar ~scalars:[ ("n", 100) ] k "r")

let test_for_loop_zero_trip () =
  let k =
    kernel
      ~ports:[ out_scalar "r" Ty.U32 ]
      ~locals:[ ("i", Ty.U32) ]
      [ set "r" (int 7); for_ "i" ~from:(int 5) ~below:(int 5) [ set "r" (int 0) ] ]
  in
  check Alcotest.int "zero-trip loop" 7 (run_scalar k "r")

let test_array_roundtrip () =
  let k =
    kernel
      ~ports:[ out_scalar "r" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("acc", Ty.U32) ]
      ~arrays:[ array "a" Ty.U32 8 ]
      [
        for_ "i" ~from:(int 0) ~below:(int 8) [ store "a" (v "i") (v "i" *: v "i") ];
        set "acc" (int 0);
        for_ "i" ~from:(int 0) ~below:(int 8) [ set "acc" (v "acc" +: load "a" (v "i")) ];
        set "r" (v "acc");
      ]
  in
  check Alcotest.int "sum of squares 0..7" 140 (run_scalar k "r")

let test_array_init () =
  let k =
    kernel
      ~ports:[ out_scalar "r" Ty.U32 ]
      ~arrays:[ array ~init:[| 10; 20; 30 |] "a" Ty.U32 3 ]
      [ set "r" (load "a" (int 1)) ]
  in
  check Alcotest.int "initialized array" 20 (run_scalar k "r")

let test_array_oob_dynamic () =
  let k =
    kernel
      ~ports:[ in_scalar "i" Ty.U32; out_scalar "r" Ty.U32 ]
      ~arrays:[ array "a" Ty.U32 4 ]
      [ set "r" (load "a" (v "i")) ]
  in
  (match Interp.run_kernel ~scalars:[ ("i", 9) ] k with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected runtime error")

let test_streams () =
  let k =
    kernel
      ~ports:[ in_stream "xs" Ty.U32; out_stream "ys" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("x", Ty.U32) ]
      [ for_ "i" ~from:(int 0) ~below:(int 4) [ pop "x" "xs"; push "ys" (v "x" +: int 1) ] ]
  in
  let r = Interp.run_kernel ~streams:[ ("xs", [ 1; 2; 3; 4 ]) ] k in
  check (Alcotest.list Alcotest.int) "incremented" [ 2; 3; 4; 5 ]
    (Interp.Channels.drain r.Interp.channels "ys")

let test_stream_underflow () =
  let k =
    kernel ~ports:[ in_stream "xs" Ty.U32 ] ~locals:[ ("x", Ty.U32) ] [ pop "x" "xs" ]
  in
  match Interp.run_kernel ~streams:[ ("xs", []) ] k with
  | exception Interp.Stuck _ -> ()
  | _ -> Alcotest.fail "expected Stuck"

let test_fuel_exhaustion () =
  let k =
    kernel ~locals:[ ("x", Ty.U32) ]
      [ set "x" (int 1); while_ (v "x" >: int 0) [ set "x" (int 1) ] ]
  in
  match Interp.run_kernel ~fuel:10_000 k with
  | exception Interp.Stuck _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_unops () =
  let k =
    kernel
      ~ports:[ out_scalar "a" Ty.U32; out_scalar "b" Ty.U32; out_scalar "c" Ty.U32 ]
      [
        set "a" (Ast.Un (Ast.Neg, int 5));
        set "b" (Ast.Un (Ast.Bnot, int 0));
        set "c" (Ast.Un (Ast.Lnot, int 42));
      ]
  in
  let r = Interp.run_kernel k in
  check Alcotest.int "neg" (Soc_util.Bits.of_signed ~width:32 (-5))
    (List.assoc "a" r.Interp.out_scalars);
  check Alcotest.int "bnot 0" 0xFFFFFFFF (List.assoc "b" r.Interp.out_scalars);
  check Alcotest.int "lnot 42" 0 (List.assoc "c" r.Interp.out_scalars)

let test_stats_counted () =
  let k =
    kernel
      ~ports:[ in_stream "xs" Ty.U32; out_stream "ys" Ty.U32 ]
      ~locals:[ ("x", Ty.U32) ]
      [ pop "x" "xs"; push "ys" (v "x" *: int 2) ]
  in
  let r = Interp.run_kernel ~streams:[ ("xs", [ 21 ]) ] k in
  let s = r.Interp.run_stats in
  check Alcotest.int "stream reads" 1 s.Interp.stream_reads;
  check Alcotest.int "stream writes" 1 s.Interp.stream_writes;
  check Alcotest.bool "alu ops counted" true (s.Interp.alu_ops >= 1)

(* ------------------------------------------------------------------ *)
(* CFG structure                                                       *)
(* ------------------------------------------------------------------ *)

let test_cfg_straightline_single_block () =
  let k = kernel ~ports:[ out_scalar "r" Ty.U32 ] [ set "r" (int 1 +: int 2) ] in
  let cfg = Cfg.of_kernel k in
  check Alcotest.int "one block" 1 (Array.length cfg.Cfg.blocks);
  check Alcotest.bool "halts" true (cfg.Cfg.blocks.(0).Cfg.term = Cfg.Halt)

let test_cfg_if_shape () =
  let k =
    kernel ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
      [ if_ (v "a") [ set "r" (int 1) ] [ set "r" (int 2) ] ]
  in
  let cfg = Cfg.of_kernel k in
  (* entry + then + else + join *)
  check Alcotest.int "four blocks" 4 (Array.length cfg.Cfg.blocks);
  match cfg.Cfg.blocks.(0).Cfg.term with
  | Cfg.Branch (_, t, e) ->
    check Alcotest.bool "distinct targets" true (t <> e)
  | _ -> Alcotest.fail "entry must branch"

let test_cfg_temps_are_typed () =
  let k = kernel ~ports:[ out_scalar "r" Ty.U32 ] [ set "r" (int 1 +: int 2) ] in
  let cfg = Cfg.of_kernel k in
  check Alcotest.bool "temp registered" true
    (List.exists (fun r -> String.length r > 1 && r.[0] = '%') (Cfg.all_regs cfg))

let test_cfg_instr_count () =
  let k =
    kernel ~ports:[ out_scalar "r" Ty.U32 ]
      [ set "r" ((int 1 +: int 2) *: (int 3 -: int 4)) ]
  in
  let cfg = Cfg.of_kernel k in
  (* add, sub, mul, mov *)
  check Alcotest.int "TAC ops" 4 (Cfg.instr_count cfg)

let test_cfg_rejects_illtyped () =
  let k = kernel [ set "ghost" (int 1) ] in
  match Cfg.of_kernel k with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected typecheck failure"

let test_cfg_to_string () =
  let k = kernel ~ports:[ out_scalar "r" Ty.U32 ] [ set "r" (int 1) ] in
  let s = Cfg.to_string (Cfg.of_kernel k) in
  check Alcotest.bool "mentions B0" true (Tstr.contains s "B0:")

(* ------------------------------------------------------------------ *)
(* C emission and complexity                                           *)
(* ------------------------------------------------------------------ *)

let test_to_c () =
  let k = Soc_apps.Otsu.histogram_kernel ~pixels:64 in
  let c = Ast.to_c k in
  check Alcotest.bool "signature" true (Tstr.contains c "void computeHistogram(");
  check Alcotest.bool "stream type" true (Tstr.contains c "hls::stream<uint32_t>");
  check Alcotest.bool "array decl" true (Tstr.contains c "uint32_t hist[256]");
  check Alcotest.bool "loop" true (Tstr.contains c "for (")

let test_complexity_monotone () =
  let small = Soc_apps.Filters.add_kernel in
  let big = Soc_apps.Otsu.otsu_method_kernel ~pixels:4096 in
  check Alcotest.bool "otsu more complex than add" true
    (Ast.complexity big > Ast.complexity small)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Interpreter agrees with a native OCaml fold for a sum-of-stream kernel. *)
let prop_stream_sum =
  QCheck.Test.make ~name:"stream sum matches native fold" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_bound 10000))
    (fun xs ->
      let n = List.length xs in
      let k =
        kernel
          ~ports:[ in_stream "xs" Ty.U32; out_scalar "r" Ty.U32 ]
          ~locals:[ ("i", Ty.U32); ("x", Ty.U32); ("acc", Ty.U32) ]
          [
            set "acc" (int 0);
            for_ "i" ~from:(int 0) ~below:(int n)
              [ pop "x" "xs"; set "acc" (v "acc" +: v "x") ];
            set "r" (v "acc");
          ]
      in
      run_scalar ~streams:[ ("xs", xs) ] k "r"
      = Soc_util.Bits.truncate ~width:32 (List.fold_left ( + ) 0 xs))

(* Binary operators agree with Semantics (itself Int64-tested in
   test_util) when evaluated through a full kernel round-trip. *)
let binop_gen =
  QCheck.Gen.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Udiv; Ast.Band; Ast.Bor; Ast.Bxor;
      Ast.Shl; Ast.Shr; Ast.Lt; Ast.Ult; Ast.Eq ]

let prop_binop_roundtrip =
  QCheck.Test.make ~name:"kernel binop = Semantics.eval_binop" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* op = binop_gen in
         let* a = int_bound 0xFFFFF in
         let* b = int_bound 0xFFFFF in
         return (op, a, b)))
    (fun (op, a, b) ->
      let k =
        kernel
          ~ports:[ in_scalar "a" Ty.U32; in_scalar "b" Ty.U32; out_scalar "r" Ty.U32 ]
          [ set "r" (Ast.Bin (op, v "a", v "b")) ]
      in
      run_scalar ~scalars:[ ("a", a); ("b", b) ] k "r" = Semantics.eval_binop op a b)

let suite =
  [
    ("typecheck accepts valid kernel", `Quick, test_tc_ok);
    ("typecheck unknown variable", `Quick, test_tc_unknown_var);
    ("typecheck unknown array", `Quick, test_tc_unknown_array);
    ("typecheck write to input scalar", `Quick, test_tc_write_input_scalar);
    ("typecheck stream directions", `Quick, test_tc_stream_direction);
    ("typecheck constant index bounds", `Quick, test_tc_const_oob);
    ("typecheck duplicate names", `Quick, test_tc_duplicate_names);
    ("typecheck array declarations", `Quick, test_tc_bad_array);
    ("arithmetic", `Quick, test_arith);
    ("signed division", `Quick, test_signed_division);
    ("type truncation on store", `Quick, test_type_truncation);
    ("if/else", `Quick, test_if_else);
    ("while loop", `Quick, test_while_loop);
    ("for loop sum", `Quick, test_for_loop_sum);
    ("zero-trip for loop", `Quick, test_for_loop_zero_trip);
    ("array store/load", `Quick, test_array_roundtrip);
    ("array initializer", `Quick, test_array_init);
    ("dynamic bounds check", `Quick, test_array_oob_dynamic);
    ("stream pipeline", `Quick, test_streams);
    ("stream underflow raises Stuck", `Quick, test_stream_underflow);
    ("fuel exhaustion", `Quick, test_fuel_exhaustion);
    ("unary operators", `Quick, test_unops);
    ("dynamic stats", `Quick, test_stats_counted);
    ("cfg: straight line", `Quick, test_cfg_straightline_single_block);
    ("cfg: if shape", `Quick, test_cfg_if_shape);
    ("cfg: temps typed", `Quick, test_cfg_temps_are_typed);
    ("cfg: TAC decomposition", `Quick, test_cfg_instr_count);
    ("cfg: rejects ill-typed", `Quick, test_cfg_rejects_illtyped);
    ("cfg: printer", `Quick, test_cfg_to_string);
    ("C emission", `Quick, test_to_c);
    ("complexity monotone", `Quick, test_complexity_monotone);
    qtest prop_stream_sum;
    qtest prop_binop_roundtrip;
  ]

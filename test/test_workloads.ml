(* Tests for the additional application workloads: the XTEA crypto SoC and
   the FIR DSP pipeline. These exercise the DSL/flow/platform stack with
   workloads very different from the image case study. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let key = [| 0x00010203; 0x04050607; 0x08090A0B; 0x0C0D0E0F |]

(* ------------------------------------------------------------------ *)
(* XTEA golden model                                                   *)
(* ------------------------------------------------------------------ *)

let test_xtea_reference_vector () =
  (* Published XTEA test vector: key 000102030405060708090A0B0C0D0E0F,
     plaintext 4142434445464748 -> ciphertext 497df3d072612cb5. *)
  let c0, c1 = Soc_apps.Xtea.Golden.encrypt_block ~key (0x41424344, 0x45464748) in
  check Alcotest.int "c0" 0x497df3d0 c0;
  check Alcotest.int "c1" 0x72612cb5 c1

let test_xtea_decrypt_inverts () =
  let p = (0x12345678, 0x9ABCDEF0) in
  let c = Soc_apps.Xtea.Golden.encrypt_block ~key p in
  check (Alcotest.pair Alcotest.int Alcotest.int) "roundtrip" p
    (Soc_apps.Xtea.Golden.decrypt_block ~key c)

let test_xtea_key_sensitivity () =
  let p = (7, 9) in
  let c1 = Soc_apps.Xtea.Golden.encrypt_block ~key p in
  let key2 = Array.copy key in
  key2.(3) <- key2.(3) lxor 1;
  let c2 = Soc_apps.Xtea.Golden.encrypt_block ~key:key2 p in
  check Alcotest.bool "single key bit changes ciphertext" true (c1 <> c2)

let test_xtea_odd_words_rejected () =
  match Soc_apps.Xtea.Golden.encrypt_words ~key [ 1; 2; 3 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid arg"

let prop_xtea_roundtrip =
  QCheck.Test.make ~name:"xtea golden: decrypt . encrypt = id" ~count:100
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
    (fun p -> Soc_apps.Xtea.Golden.decrypt_block ~key (Soc_apps.Xtea.Golden.encrypt_block ~key p) = p)

(* ------------------------------------------------------------------ *)
(* XTEA kernels                                                        *)
(* ------------------------------------------------------------------ *)

let key_scalars =
  Array.to_list (Array.mapi (fun i kw -> (Printf.sprintf "key%d" i, kw)) key)

let test_xtea_kernel_matches_golden () =
  let pt = [ 0x41424344; 0x45464748; 1; 2; 0xFFFFFFFF; 0 ] in
  let r =
    Soc_kernel.Interp.run_kernel ~scalars:key_scalars ~streams:[ ("pt", pt) ]
      (Soc_apps.Xtea.encrypt_kernel ~blocks:3)
  in
  check (Alcotest.list Alcotest.int) "kernel = golden"
    (Soc_apps.Xtea.Golden.encrypt_words ~key pt)
    (Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "ct")

let test_xtea_decrypt_kernel () =
  let pt = [ 3; 1; 4; 1 ] in
  let ct = Soc_apps.Xtea.Golden.encrypt_words ~key pt in
  let r =
    Soc_kernel.Interp.run_kernel ~scalars:key_scalars ~streams:[ ("ct", ct) ]
      (Soc_apps.Xtea.decrypt_kernel ~blocks:2)
  in
  check (Alcotest.list Alcotest.int) "decrypt kernel inverts" pt
    (Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "pt")

let test_xtea_rtl_differential () =
  let pt = [ 0xCAFEBABE; 0x0BADF00D ] in
  let accel = Soc_hls.Engine.synthesize (Soc_apps.Xtea.encrypt_kernel ~blocks:1) in
  let tb =
    Soc_hls.Testbench.run ~scalars:key_scalars ~streams:[ ("pt", pt) ]
      accel.Soc_hls.Engine.fsmd
  in
  check (Alcotest.list Alcotest.int) "RTL = golden"
    (Soc_apps.Xtea.Golden.encrypt_words ~key pt)
    (List.assoc "ct" tb.Soc_hls.Testbench.out_streams)

let test_xtea_loopback_soc () =
  let cycles, ok, build = Soc_apps.Xtea.run_loopback ~blocks:8 ~key () in
  check Alcotest.bool "recovered plaintext" true ok;
  check Alcotest.bool "time charged" true (cycles > 0);
  check Alcotest.bool "no DSPs (add/xor/shift only)" true
    (build.Soc_core.Flow.resources.Soc_hls.Report.dsp = 0);
  check Alcotest.bool "fits device" true
    (Soc_hls.Report.fits build.Soc_core.Flow.resources)

let test_xtea_specs_validate () =
  Soc_core.Spec.validate_exn Soc_apps.Xtea.loopback_spec;
  Soc_core.Spec.validate_exn Soc_apps.Xtea.encrypt_spec

(* ------------------------------------------------------------------ *)
(* FIR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_fir_golden_impulse () =
  (* Impulse response = the coefficients. *)
  let coeffs = [| 3; 1; 5 |] in
  let out = Soc_apps.Fir.Golden.run ~coeffs [ 1; 0; 0; 0 ] in
  check (Alcotest.list Alcotest.int) "impulse response" [ 3; 1; 5; 0 ] out

let test_fir_golden_step () =
  (* Step response converges to the coefficient sum. *)
  let coeffs = Soc_apps.Fir.smoother_coeffs in
  let out = Soc_apps.Fir.Golden.run ~coeffs (List.init 10 (fun _ -> 1)) in
  check Alcotest.int "steady state = 16" 16 (List.nth out 9)

let test_fir_kernel_matches_golden () =
  let samples = 24 in
  let rng = Soc_util.Rng.create 77 in
  let xs = List.init samples (fun _ -> Soc_util.Rng.int rng 1000) in
  let coeffs = Soc_apps.Fir.smoother_coeffs in
  let r =
    Soc_kernel.Interp.run_kernel ~streams:[ ("x", xs) ]
      (Soc_apps.Fir.kernel ~name:"smooth" ~coeffs ~samples)
  in
  check (Alcotest.list Alcotest.int) "kernel = golden"
    (Soc_apps.Fir.Golden.run ~coeffs xs)
    (Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "y")

let test_fir_negative_coeffs () =
  (* Differentiator with -1 coefficient (two's complement wrap). *)
  let xs = [ 10; 12; 15; 15; 9 ] in
  let out = Soc_apps.Fir.Golden.run ~coeffs:Soc_apps.Fir.diff_coeffs xs in
  let signed = List.map (Soc_util.Bits.to_signed ~width:32) out in
  check (Alcotest.list Alcotest.int) "first differences" [ 10; 2; 3; 0; -6 ] signed

let test_fir_rtl_differential () =
  let samples = 10 in
  let rng = Soc_util.Rng.create 13 in
  let xs = List.init samples (fun _ -> Soc_util.Rng.int rng 500) in
  let k = Soc_apps.Fir.kernel ~name:"smooth" ~coeffs:Soc_apps.Fir.smoother_coeffs ~samples in
  let accel = Soc_hls.Engine.synthesize k in
  let tb = Soc_hls.Testbench.run ~streams:[ ("x", xs) ] accel.Soc_hls.Engine.fsmd in
  check (Alcotest.list Alcotest.int) "RTL = golden"
    (Soc_apps.Fir.Golden.run ~coeffs:Soc_apps.Fir.smoother_coeffs xs)
    (List.assoc "y" tb.Soc_hls.Testbench.out_streams)

let test_fir_pipeline_spec_validates () =
  Soc_core.Spec.validate_exn Soc_apps.Fir.pipeline_spec

let test_fir_uses_bram_for_coeffs () =
  let k = Soc_apps.Fir.kernel ~name:"smooth" ~coeffs:Soc_apps.Fir.smoother_coeffs ~samples:8 in
  let accel = Soc_hls.Engine.synthesize k in
  check Alcotest.bool "brams" true
    (accel.Soc_hls.Engine.report.Soc_hls.Report.resources.Soc_hls.Report.bram18 >= 2)

let prop_fir_linear =
  (* Linearity: FIR(a + b) = FIR(a) + FIR(b) (mod 2^32). *)
  QCheck.Test.make ~name:"fir golden is linear" ~count:50
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 20) (int_bound 10_000))
              (small_list (int_bound 10_000)))
    (fun (a, b) ->
      let n = List.length a in
      let b = List.init n (fun i -> match List.nth_opt b i with Some v -> v | None -> 0) in
      let coeffs = Soc_apps.Fir.smoother_coeffs in
      let fir xs = Soc_apps.Fir.Golden.run ~coeffs xs in
      let sum = List.map2 (fun x y -> Soc_util.Bits.add ~width:32 x y) in
      fir (sum a b) = sum (fir a) (fir b))

let suite =
  [
    ("xtea reference vector", `Quick, test_xtea_reference_vector);
    ("xtea decrypt inverts", `Quick, test_xtea_decrypt_inverts);
    ("xtea key sensitivity", `Quick, test_xtea_key_sensitivity);
    ("xtea odd words rejected", `Quick, test_xtea_odd_words_rejected);
    ("xtea kernel = golden", `Quick, test_xtea_kernel_matches_golden);
    ("xtea decrypt kernel", `Quick, test_xtea_decrypt_kernel);
    ("xtea RTL differential", `Quick, test_xtea_rtl_differential);
    ("xtea loopback SoC", `Quick, test_xtea_loopback_soc);
    ("xtea specs validate", `Quick, test_xtea_specs_validate);
    ("fir impulse response", `Quick, test_fir_golden_impulse);
    ("fir step response", `Quick, test_fir_golden_step);
    ("fir kernel = golden", `Quick, test_fir_kernel_matches_golden);
    ("fir negative coefficients", `Quick, test_fir_negative_coeffs);
    ("fir RTL differential", `Quick, test_fir_rtl_differential);
    ("fir pipeline spec validates", `Quick, test_fir_pipeline_spec_validates);
    ("fir coefficient bram", `Quick, test_fir_uses_bram_for_coeffs);
    qtest prop_xtea_roundtrip;
    qtest prop_fir_linear;
  ]

(* Tests for the flow coordinator (Section IV), the Tcl backends, the
   software generation (Section V) and the tool-runtime model. *)

open Soc_core

let check = Alcotest.check

let fig4_build () =
  Flow.build Soc_apps.Graphs.fig4_spec
    ~kernels:(Soc_apps.Graphs.fig4_kernels ~width:16 ~height:16)

(* ------------------------------------------------------------------ *)
(* Kernel/interface consistency                                        *)
(* ------------------------------------------------------------------ *)

let test_build_fig4 () =
  let b = fig4_build () in
  check Alcotest.int "four accelerators" 4 (List.length b.Flow.impls);
  check Alcotest.int "two DMA channels" 2 (List.length b.Flow.dma_channels)

let test_missing_kernel_rejected () =
  match
    Flow.build Soc_apps.Graphs.fig4_spec
      ~kernels:(List.tl (Soc_apps.Graphs.fig4_kernels ~width:16 ~height:16))
  with
  | exception Flow.Build_error msg ->
    check Alcotest.bool "names the node" true (Tstr.contains msg "MUL")
  | _ -> Alcotest.fail "expected build error"

let test_port_kind_mismatch_rejected () =
  (* Declare GAUSS ports as AXI-Lite while the kernel uses streams. *)
  let open Edsl in
  let spec =
    design "bad" @@ fun tg ->
    nodes tg;
    node tg "GAUSS" |> i "in" |> i "out" |> end_;
    end_nodes tg;
    edges tg;
    connect tg "GAUSS";
    end_edges tg
  in
  match
    Flow.build spec ~kernels:[ ("GAUSS", Soc_apps.Filters.gauss_kernel ~width:8 ~height:8) ]
  with
  | exception Flow.Build_error msg ->
    check Alcotest.bool "kind mismatch" true (Tstr.contains msg "kind")
  | _ -> Alcotest.fail "expected kind mismatch"

let test_direction_mismatch_rejected () =
  (* Link drives GAUSS.out as an input: kernel says it is an output. *)
  let open Edsl in
  let spec =
    design "bad2" @@ fun tg ->
    nodes tg;
    node tg "GAUSS" |> is "in" |> is "out" |> end_;
    end_nodes tg;
    edges tg;
    link tg soc ~to_:(port "GAUSS" "out");
    link tg (port "GAUSS" "in") ~to_:soc;
    end_edges tg
  in
  match
    Flow.build spec ~kernels:[ ("GAUSS", Soc_apps.Filters.gauss_kernel ~width:8 ~height:8) ]
  with
  | exception Flow.Build_error msg ->
    check Alcotest.bool "direction mismatch" true (Tstr.contains msg "direction")
  | _ -> Alcotest.fail "expected direction mismatch"

let test_extra_kernel_port_rejected () =
  let open Edsl in
  let spec =
    design "bad3" @@ fun tg ->
    nodes tg;
    node tg "segment" |> is "grayScaleImage" |> is "segmentedGrayImage" |> end_;
    end_nodes tg;
    edges tg;
    link tg soc ~to_:(port "segment" "grayScaleImage");
    link tg (port "segment" "segmentedGrayImage") ~to_:soc;
    end_edges tg
  in
  (* The segment kernel also has an otsuThreshold port not in the DSL. *)
  match Flow.build spec ~kernels:[ ("segment", Soc_apps.Otsu.segment_kernel ~pixels:16) ] with
  | exception Flow.Build_error msg ->
    check Alcotest.bool "undeclared port" true (Tstr.contains msg "otsuThreshold")
  | _ -> Alcotest.fail "expected extra port error"

(* ------------------------------------------------------------------ *)
(* Integration artifacts                                               *)
(* ------------------------------------------------------------------ *)

let test_address_map_disjoint () =
  let b = fig4_build () in
  let segs = List.map (fun (_, base, size) -> (base, base + size)) b.Flow.address_map in
  let rec disjoint = function
    | [] | [ _ ] -> true
    | (lo1, hi1) :: rest ->
      List.for_all (fun (lo2, hi2) -> hi1 <= lo2 || hi2 <= lo1) rest && disjoint rest
  in
  check Alcotest.bool "disjoint segments" true (disjoint segs);
  check Alcotest.int "nodes + dma entries" 6 (List.length b.Flow.address_map)

let test_resources_aggregate () =
  let b = fig4_build () in
  let per_core = Soc_hls.Report.sum (List.map snd b.Flow.resources_by_core) in
  check Alcotest.bool "system > sum of cores (integration glue)" true
    (b.Flow.resources.Soc_hls.Report.lut > per_core.Soc_hls.Report.lut);
  check Alcotest.bool "dma adds brams" true
    (b.Flow.resources.Soc_hls.Report.bram18 > per_core.Soc_hls.Report.bram18)

let test_bitstream_named () =
  let b = fig4_build () in
  check Alcotest.string "bitstream artifact" "fig4_bd_wrapper.bit" b.Flow.bitstream

(* ------------------------------------------------------------------ *)
(* Tcl backends                                                        *)
(* ------------------------------------------------------------------ *)

let test_tcl_contains_all_blocks () =
  let b = fig4_build () in
  let tcl = b.Flow.tcl_2014 in
  List.iter
    (fun frag ->
      check Alcotest.bool ("tcl has " ^ frag) true (Tstr.contains tcl frag))
    [ "create_project"; "processing_system7"; "axi_dma"; "GAUSS_0"; "EDGE_0"; "MUL_0";
      "ADD_0"; "launch_runs synth_1"; "write_bitstream"; "assign_bd_address" ]

let test_tcl_stream_topology () =
  let b = fig4_build () in
  check Alcotest.bool "internal gauss->edge link" true
    (Tstr.contains b.Flow.tcl_2014 "GAUSS_0/out] [get_bd_intf_pins EDGE_0/in")

let test_tcl_versions_differ_slightly () =
  let d = Tcl.diff_backends Soc_apps.Graphs.fig4_spec in
  check Alcotest.bool "some commands changed" true (d.Tcl.changed_commands > 0);
  check Alcotest.bool "most commands stable" true (d.Tcl.changed_fraction < 0.25)

let test_tcl_version_strings () =
  let b = fig4_build () in
  check Alcotest.bool "5.3 in 2014.2" true
    (Tstr.contains b.Flow.tcl_2014 "processing_system7:5.3");
  check Alcotest.bool "5.5 in 2015.3" true
    (Tstr.contains b.Flow.tcl_2015 "processing_system7:5.5")

let test_conciseness_ratios_in_paper_range () =
  (* Section VI.C: tcl ~4x lines, 4-10x chars vs the DSL text. *)
  let b =
    Flow.build (Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4)
      ~kernels:(Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch4 ~width:16 ~height:16)
  in
  let dsl = Soc_util.Metrics.of_string b.Flow.dsl_source in
  let tcl = Soc_util.Metrics.of_string b.Flow.tcl_2014 in
  let line_ratio = Soc_util.Metrics.ratio ~num:tcl.Soc_util.Metrics.lines ~den:dsl.Soc_util.Metrics.lines in
  let char_ratio = Soc_util.Metrics.ratio ~num:tcl.Soc_util.Metrics.chars ~den:dsl.Soc_util.Metrics.chars in
  check Alcotest.bool "line ratio in [2,8]" true (line_ratio >= 2.0 && line_ratio <= 8.0);
  check Alcotest.bool "char ratio in [3,12]" true (char_ratio >= 3.0 && char_ratio <= 12.0)

(* ------------------------------------------------------------------ *)
(* Software generation                                                 *)
(* ------------------------------------------------------------------ *)

let test_device_tree () =
  let b = fig4_build () in
  let dt = b.Flow.sw.Swgen.device_tree in
  check Alcotest.bool "dts header" true (Tstr.contains dt "/dts-v1/");
  check Alcotest.bool "accelerator node" true (Tstr.contains dt "GAUSS");
  check Alcotest.bool "dma compatible" true (Tstr.contains dt "xlnx,axi-dma");
  check Alcotest.bool "reg property" true (Tstr.contains dt "reg = <0x40000000")

let test_api_header () =
  let b = fig4_build () in
  let h = b.Flow.sw.Swgen.api_header in
  check Alcotest.bool "readDMA" true (Tstr.contains h "int readDMA(");
  check Alcotest.bool "writeDMA" true (Tstr.contains h "int writeDMA(");
  check Alcotest.bool "MUL wrapper" true (Tstr.contains h "void MUL_start(uint32_t A, uint32_t B");
  check Alcotest.bool "wait wrapper" true (Tstr.contains h "uint32_t MUL_wait(void)")

let test_api_source () =
  let b = fig4_build () in
  let c = b.Flow.sw.Swgen.api_source in
  check Alcotest.bool "mmap" true (Tstr.contains c "mmap");
  check Alcotest.bool "ap_start write" true (Tstr.contains c "r[0] = 1");
  check Alcotest.bool "done poll" true (Tstr.contains c "while (!(r[1] & 1))")

let test_boot_manifest () =
  let b = fig4_build () in
  check Alcotest.bool "bitstream in BOOT.BIN" true
    (List.mem "fig4_bd_wrapper.bit" b.Flow.sw.Swgen.boot_bin_manifest);
  check Alcotest.bool "devicetree in BOOT.BIN" true
    (List.mem "devicetree.dtb" b.Flow.sw.Swgen.boot_bin_manifest)

let test_dev_entries () =
  let b = fig4_build () in
  check Alcotest.int "one /dev node per dma" 2 (List.length b.Flow.sw.Swgen.dev_entries)

(* ------------------------------------------------------------------ *)
(* Tool-runtime model (Fig. 9 anchors)                                 *)
(* ------------------------------------------------------------------ *)

let test_toolsim_anchors () =
  check Alcotest.bool "scala ~6s" true (abs_float (Toolsim.scala_time ~dsl_lines:15 -. 6.75) < 1.0);
  check Alcotest.bool "project ~50s" true
    (abs_float (Toolsim.project_gen_time ~cells:9 -. 47.6) < 5.0)

let test_toolsim_hls_cache () =
  let cache = Hashtbl.create 4 in
  let b1 =
    Toolsim.estimate ~arch:"a1" ~dsl_lines:10
      ~kernel_complexities:[ ("k1", 50); ("k2", 60) ]
      ~hls_cache:cache ~cells:5 ~luts:5000
  in
  let b2 =
    Toolsim.estimate ~arch:"a2" ~dsl_lines:10
      ~kernel_complexities:[ ("k1", 50) ] (* already synthesized *)
      ~hls_cache:cache ~cells:5 ~luts:5000
  in
  let hls b = List.assoc Toolsim.Hls b.Toolsim.seconds in
  check Alcotest.bool "first run pays" true (hls b1 > 50.0);
  check (Alcotest.float 0.001) "cached run free" 0.0 (hls b2)

let test_toolsim_total_positive () =
  let cache = Hashtbl.create 4 in
  let b =
    Toolsim.estimate ~arch:"a" ~dsl_lines:12 ~kernel_complexities:[ ("k", 40) ]
      ~hls_cache:cache ~cells:6 ~luts:9000
  in
  check Alcotest.bool "total in minutes range" true
    (Toolsim.total b > 300.0 && Toolsim.total b < 1200.0)

let test_flow_tool_times_use_shared_cache () =
  let cache = Hashtbl.create 8 in
  let mk arch =
    Flow.build ~hls_cache:cache (Soc_apps.Graphs.arch_spec arch)
      ~kernels:(Soc_apps.Graphs.arch_kernels arch ~width:8 ~height:8)
  in
  (* Arch4 first, like the paper; then Arch1 reuses the histogram core. *)
  let b4 = mk Soc_apps.Graphs.Arch4 in
  let b1 = mk Soc_apps.Graphs.Arch1 in
  let hls b = List.assoc Toolsim.Hls b.Flow.tool_times.Toolsim.seconds in
  check Alcotest.bool "arch4 pays all kernels" true (hls b4 > 100.0);
  check (Alcotest.float 0.001) "arch1 fully cached" 0.0 (hls b1)

(* ------------------------------------------------------------------ *)
(* Block diagram (Fig. 10)                                             *)
(* ------------------------------------------------------------------ *)

let test_block_diagram_dot () =
  let b = fig4_build () in
  let dot = Block_diagram.to_dot b in
  check Alcotest.bool "PS colored blue" true (Tstr.contains dot "steelblue");
  check Alcotest.bool "DMA colored green" true (Tstr.contains dot "mediumseagreen");
  check Alcotest.bool "gauss core present" true (Tstr.contains dot "GAUSS")

let test_block_diagram_ascii () =
  let b = fig4_build () in
  let a = Block_diagram.to_ascii b in
  check Alcotest.bool "lite rows" true (Tstr.contains a "AXI-Lite: MUL");
  check Alcotest.bool "dma rows" true (Tstr.contains a "DMA MM2S ==> GAUSS.in");
  check Alcotest.bool "internal link" true (Tstr.contains a "GAUSS.out ==AXIS==> EDGE.in")

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

let test_instantiate_binds_everything () =
  let b = fig4_build () in
  let live = Flow.instantiate b in
  check Alcotest.int "two channels" 2 (List.length live.Flow.channels);
  check Alcotest.bool "gauss channel resolvable" true
    (Flow.channel live ~node:"GAUSS" ~port:"in" <> "");
  match Flow.channel live ~node:"GAUSS" ~port:"nope" with
  | exception Flow.Build_error _ -> ()
  | _ -> Alcotest.fail "expected channel error"

let suite =
  [
    ("build fig4", `Quick, test_build_fig4);
    ("missing kernel rejected", `Quick, test_missing_kernel_rejected);
    ("port kind mismatch rejected", `Quick, test_port_kind_mismatch_rejected);
    ("direction mismatch rejected", `Quick, test_direction_mismatch_rejected);
    ("extra kernel port rejected", `Quick, test_extra_kernel_port_rejected);
    ("address map disjoint", `Quick, test_address_map_disjoint);
    ("resources aggregate", `Quick, test_resources_aggregate);
    ("bitstream artifact named", `Quick, test_bitstream_named);
    ("tcl contains all blocks", `Quick, test_tcl_contains_all_blocks);
    ("tcl stream topology", `Quick, test_tcl_stream_topology);
    ("tcl backend versions differ slightly", `Quick, test_tcl_versions_differ_slightly);
    ("tcl ip versions per release", `Quick, test_tcl_version_strings);
    ("conciseness ratios in paper range", `Quick, test_conciseness_ratios_in_paper_range);
    ("device tree", `Quick, test_device_tree);
    ("api header", `Quick, test_api_header);
    ("api source", `Quick, test_api_source);
    ("boot manifest", `Quick, test_boot_manifest);
    ("dev entries", `Quick, test_dev_entries);
    ("toolsim anchors", `Quick, test_toolsim_anchors);
    ("toolsim hls cache", `Quick, test_toolsim_hls_cache);
    ("toolsim totals", `Quick, test_toolsim_total_positive);
    ("flow shares hls cache", `Quick, test_flow_tool_times_use_shared_cache);
    ("block diagram dot", `Quick, test_block_diagram_dot);
    ("block diagram ascii", `Quick, test_block_diagram_ascii);
    ("instantiate binds everything", `Quick, test_instantiate_binds_everything);
  ]

(* Tests for the static performance estimator: exactness against measured
   RTL cycles for deterministic kernels, sound intervals for
   data-dependent ones, loop reports, and unbounded bounds for unknown
   trip counts. *)

open Soc_kernel
open Soc_kernel.Ast.Build
module Perf = Soc_hls.Perf

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let kernel ?(name = "k") ?(ports = []) ?(locals = []) ?(arrays = []) body =
  { Ast.kname = name; ports; locals; arrays; body }

let synth ?config k = Soc_hls.Engine.synthesize ?config k

let measured ?(scalars = []) ?(streams = []) accel =
  (Soc_hls.Testbench.run ~scalars ~streams accel.Soc_hls.Engine.fsmd)
    .Soc_hls.Testbench.cycles

let assert_exact ?(scalars = []) ?(streams = []) k =
  let accel = synth k in
  let m = measured ~scalars ~streams accel in
  let p = accel.Soc_hls.Engine.perf in
  check Alcotest.int "min = measured" m p.Perf.latency.Perf.min_cycles;
  check Alcotest.bool "max = measured" true
    (p.Perf.latency.Perf.max_cycles = Perf.Finite m)

(* ------------------------------------------------------------------ *)
(* Exactness on deterministic kernels                                  *)
(* ------------------------------------------------------------------ *)

let test_exact_straightline () =
  assert_exact ~scalars:[ ("a", 5); ("b", 6) ]
    (kernel
       ~ports:[ in_scalar "a" Ty.U32; in_scalar "b" Ty.U32; out_scalar "r" Ty.U32 ]
       [ set "r" ((v "a" *: v "b") +: int 1) ])

let test_exact_constant_loop () =
  assert_exact
    (kernel
       ~ports:[ out_scalar "r" Ty.U32 ]
       ~locals:[ ("i", Ty.U32); ("acc", Ty.U32) ]
       [
         set "acc" (int 0);
         for_ "i" ~from:(int 0) ~below:(int 13) [ set "acc" (v "acc" +: v "i") ];
         set "r" (v "acc");
       ])

let test_exact_nested_loops () =
  assert_exact
    (kernel
       ~ports:[ out_scalar "r" Ty.U32 ]
       ~locals:[ ("i", Ty.U32); ("j", Ty.U32); ("acc", Ty.U32) ]
       [
         set "acc" (int 0);
         for_ "i" ~from:(int 0) ~below:(int 5)
           [ for_ "j" ~from:(int 0) ~below:(int 7) [ set "acc" (v "acc" +: int 1) ] ];
         set "r" (v "acc");
       ])

let test_exact_streaming_kernel () =
  (* Ideal source/sink: stall-free estimate equals the measured run. *)
  let k = Soc_apps.Otsu.histogram_kernel ~pixels:32 in
  let rng = Soc_util.Rng.create 1 in
  let pixels = List.init 32 (fun _ -> Soc_util.Rng.int rng 256) in
  assert_exact ~streams:[ ("grayScaleImage", pixels) ] k

let test_exact_xtea () =
  assert_exact
    ~scalars:[ ("key0", 1); ("key1", 2); ("key2", 3); ("key3", 4) ]
    ~streams:[ ("pt", [ 7; 8 ]) ]
    (Soc_apps.Xtea.encrypt_kernel ~blocks:1)

(* ------------------------------------------------------------------ *)
(* Intervals for data-dependent control                                *)
(* ------------------------------------------------------------------ *)

let branchy =
  kernel
    ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
    ~locals:[ ("t", Ty.U32) ]
    [
      if_ (v "a" >: int 10)
        [ set "t" (v "a" *: v "a" *: v "a") ] (* long arm: two multiplies *)
        [ set "t" (int 0) ];
      set "r" (v "t");
    ]

let test_branch_interval_sound () =
  let accel = synth branchy in
  let p = accel.Soc_hls.Engine.perf in
  check Alcotest.bool "min < max" true
    (match p.Perf.latency.Perf.max_cycles with
    | Perf.Finite mx -> p.Perf.latency.Perf.min_cycles < mx
    | Perf.Unbounded -> false);
  (* Both concrete executions land inside the interval. *)
  List.iter
    (fun a ->
      let m = measured ~scalars:[ ("a", a) ] accel in
      check Alcotest.bool "within interval" true
        (m >= p.Perf.latency.Perf.min_cycles
        &&
        match p.Perf.latency.Perf.max_cycles with
        | Perf.Finite mx -> m <= mx
        | Perf.Unbounded -> true))
    [ 0; 100 ]

let test_unknown_trip_unbounded () =
  let k =
    kernel
      ~ports:[ in_scalar "n" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("acc", Ty.U32) ]
      [
        set "acc" (int 0);
        for_ "i" ~from:(int 0) ~below:(v "n") [ set "acc" (v "acc" +: v "i") ];
        set "r" (v "acc");
      ]
  in
  let p = (synth k).Soc_hls.Engine.perf in
  check Alcotest.bool "max unbounded" true (p.Perf.latency.Perf.max_cycles = Perf.Unbounded);
  (* The zero-trip execution is exactly the minimum. *)
  let m0 = measured ~scalars:[ ("n", 0) ] (synth k) in
  check Alcotest.int "min = zero-trip run" m0 p.Perf.latency.Perf.min_cycles

(* ------------------------------------------------------------------ *)
(* Loop reports                                                        *)
(* ------------------------------------------------------------------ *)

let test_loop_report_contents () =
  let p = (synth (Soc_apps.Otsu.histogram_kernel ~pixels:64)).Soc_hls.Engine.perf in
  check Alcotest.int "three loops (zero, fill, drain)" 3 (List.length p.Perf.loop_reports);
  List.iter
    (fun (l : Perf.loop_report) ->
      match l.Perf.trip_count with
      | Some n -> check Alcotest.bool "known trip" true (n = 64 || n = 256)
      | None -> Alcotest.fail "constant loop lost its trip count")
    p.Perf.loop_reports

let test_stream_flag () =
  check Alcotest.bool "stream kernels flagged" true
    (synth (Soc_apps.Otsu.segment_kernel ~pixels:4)).Soc_hls.Engine.perf.Perf.has_stream_io;
  check Alcotest.bool "scalar kernels not flagged" false
    (synth Soc_apps.Filters.add_kernel).Soc_hls.Engine.perf.Perf.has_stream_io

let test_pp_renders () =
  let p = (synth (Soc_apps.Otsu.histogram_kernel ~pixels:16)).Soc_hls.Engine.perf in
  let text = Format.asprintf "%a" Perf.pp p in
  check Alcotest.bool "mentions latency" true (Tstr.contains text "Latency");
  check Alcotest.bool "mentions loops" true (Tstr.contains text "Loop 1")

(* ------------------------------------------------------------------ *)
(* Property: estimate brackets the measured run on random loop nests   *)
(* ------------------------------------------------------------------ *)

let loopnest_gen =
  QCheck.Gen.(
    let* outer = int_range 0 6 in
    let* inner = int_range 0 6 in
    let* guard = int_bound 40 in
    let* a = int_bound 1000 in
    return
      ( kernel
          ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
          ~locals:[ ("i", Ty.U32); ("j", Ty.U32); ("acc", Ty.U32) ]
          [
            set "acc" (Ast.Int 0);
            for_ "i" ~from:(Ast.Int 0) ~below:(Ast.Int outer)
              [
                for_ "j" ~from:(Ast.Int 0) ~below:(Ast.Int inner)
                  [ set "acc" (v "acc" +: (v "i" *: v "j")) ];
                if_ (v "a" >: Ast.Int guard) [ set "acc" (v "acc" +: Ast.Int 1) ] [];
              ];
            set "r" (v "acc");
          ],
        a ))

let prop_interval_brackets_measurement =
  QCheck.Test.make ~name:"perf interval brackets measured cycles" ~count:40
    (QCheck.make loopnest_gen) (fun (k, a) ->
      let accel = synth k in
      let p = accel.Soc_hls.Engine.perf in
      let m = measured ~scalars:[ ("a", a) ] accel in
      m >= p.Perf.latency.Perf.min_cycles
      &&
      match p.Perf.latency.Perf.max_cycles with
      | Perf.Finite mx -> m <= mx
      | Perf.Unbounded -> true)

let suite =
  [
    ("exact: straight line", `Quick, test_exact_straightline);
    ("exact: constant loop", `Quick, test_exact_constant_loop);
    ("exact: nested loops", `Quick, test_exact_nested_loops);
    ("exact: streaming kernel", `Quick, test_exact_streaming_kernel);
    ("exact: xtea round function", `Quick, test_exact_xtea);
    ("interval: data-dependent branch", `Quick, test_branch_interval_sound);
    ("interval: unknown trip count", `Quick, test_unknown_trip_unbounded);
    ("loop report contents", `Quick, test_loop_report_contents);
    ("stream flag", `Quick, test_stream_flag);
    ("report rendering", `Quick, test_pp_renders);
    qtest prop_interval_brackets_measurement;
  ]

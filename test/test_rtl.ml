(* Tests for the RTL netlist IR, the cycle simulator and the Verilog
   emitter. *)

module N = Soc_rtl.Netlist
module Sim = Soc_rtl.Sim
open Soc_kernel.Ast

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Combinational logic                                                 *)
(* ------------------------------------------------------------------ *)

let test_comb_adder () =
  let net = N.create "adder" in
  let a = N.input net ~name:"a" ~width:32 in
  let b = N.input net ~name:"b" ~width:32 in
  let s = N.output net ~name:"s" ~width:32 in
  N.assign net s (N.Bin (Add, N.Ref a, N.Ref b));
  let sim = Sim.create net in
  Sim.set_input sim a 41;
  Sim.set_input sim b 1;
  Sim.settle sim;
  check Alcotest.int "41+1" 42 (Sim.value sim s)

let test_comb_chain_order_independent () =
  (* y depends on x; declare y's assignment first to exercise the topo
     sort. *)
  let net = N.create "chain" in
  let a = N.input net ~name:"a" ~width:32 in
  let x = N.fresh net ~name:"x" ~width:32 in
  let y = N.output net ~name:"y" ~width:32 in
  N.assign net y (N.Bin (Mul, N.Ref x, N.Const (3, 32)));
  N.assign net x (N.Bin (Add, N.Ref a, N.Const (1, 32)));
  let sim = Sim.create net in
  Sim.set_input sim a 9;
  Sim.settle sim;
  check Alcotest.int "(9+1)*3" 30 (Sim.value sim y)

let test_comb_cycle_rejected () =
  let net = N.create "loop" in
  let x = N.fresh net ~name:"x" ~width:8 in
  let y = N.fresh net ~name:"y" ~width:8 in
  N.assign net x (N.Bin (Add, N.Ref y, N.Const (1, 8)));
  N.assign net y (N.Bin (Add, N.Ref x, N.Const (1, 8)));
  match Sim.create net with
  | exception Sim.Combinational_cycle _ -> ()
  | _ -> Alcotest.fail "expected combinational cycle"

let test_width_masking () =
  let net = N.create "mask" in
  let a = N.input net ~name:"a" ~width:32 in
  let o = N.output net ~name:"o" ~width:8 in
  N.assign net o (N.Ref a);
  let sim = Sim.create net in
  Sim.set_input sim a 0x1FF;
  Sim.settle sim;
  check Alcotest.int "truncated to 8 bits" 0xFF (Sim.value sim o)

let test_mux () =
  let net = N.create "mux" in
  let sel = N.input net ~name:"sel" ~width:1 in
  let o = N.output net ~name:"o" ~width:32 in
  N.assign net o (N.Mux (N.Ref sel, N.Const (10, 32), N.Const (20, 32)));
  let sim = Sim.create net in
  Sim.set_input sim sel 1;
  Sim.settle sim;
  check Alcotest.int "sel=1" 10 (Sim.value sim o);
  Sim.set_input sim sel 0;
  Sim.settle sim;
  check Alcotest.int "sel=0" 20 (Sim.value sim o)

(* ------------------------------------------------------------------ *)
(* Registers                                                           *)
(* ------------------------------------------------------------------ *)

let test_counter () =
  let net = N.create "counter" in
  let q = N.register net ~name:"q" ~width:8 (fun q -> N.Bin (Add, N.Ref q, N.Const (1, 8))) in
  let o = N.output net ~name:"o" ~width:8 in
  N.assign net o (N.Ref q);
  let sim = Sim.create net in
  for _ = 1 to 5 do
    Sim.settle sim;
    Sim.tick sim
  done;
  Sim.settle sim;
  check Alcotest.int "counted to 5" 5 (Sim.value sim o)

let test_counter_wraps () =
  let net = N.create "counter8" in
  let q = N.register net ~name:"q" ~width:4 (fun q -> N.Bin (Add, N.Ref q, N.Const (1, 4))) in
  let sim = Sim.create net in
  for _ = 1 to 20 do
    Sim.settle sim;
    Sim.tick sim
  done;
  check Alcotest.int "4-bit wrap: 20 mod 16" 4 (Sim.value sim q)

let test_register_enable () =
  let net = N.create "en" in
  let en = N.input net ~name:"en" ~width:1 in
  let q =
    N.register net ~name:"q" ~width:8 ~enable:(N.Ref en) (fun q ->
        N.Bin (Add, N.Ref q, N.Const (1, 8)))
  in
  let sim = Sim.create net in
  Sim.set_input sim en 0;
  for _ = 1 to 3 do
    Sim.settle sim;
    Sim.tick sim
  done;
  check Alcotest.int "held at 0" 0 (Sim.value sim q);
  Sim.set_input sim en 1;
  Sim.settle sim;
  Sim.tick sim;
  check Alcotest.int "stepped once" 1 (Sim.value sim q)

let test_register_reset_value () =
  let net = N.create "rst" in
  let q = N.register net ~reset_value:7 ~name:"q" ~width:8 (fun q -> N.Ref q) in
  let sim = Sim.create net in
  check Alcotest.int "reset value" 7 (Sim.value sim q)

let test_simultaneous_register_update () =
  (* Swap register: a <= b, b <= a must use pre-edge values. *)
  let net = N.create "swap" in
  let (a, set_a) = N.register_forward net ~reset_value:1 ~name:"a" ~width:8 () in
  let (b, set_b) = N.register_forward net ~reset_value:2 ~name:"b" ~width:8 () in
  set_a ~enable:N.one ~next:(N.Ref b);
  set_b ~enable:N.one ~next:(N.Ref a);
  let sim = Sim.create net in
  Sim.settle sim;
  Sim.tick sim;
  check Alcotest.int "a" 2 (Sim.value sim a);
  check Alcotest.int "b" 1 (Sim.value sim b)

let test_reset_api () =
  let net = N.create "r" in
  let q = N.register net ~name:"q" ~width:8 (fun q -> N.Bin (Add, N.Ref q, N.Const (1, 8))) in
  let sim = Sim.create net in
  Sim.settle sim;
  Sim.tick sim;
  check Alcotest.int "advanced" 1 (Sim.value sim q);
  Sim.reset sim;
  check Alcotest.int "back to reset" 0 (Sim.value sim q);
  check Alcotest.int "cycle cleared" 0 (Sim.cycle sim)

(* ------------------------------------------------------------------ *)
(* Memories                                                            *)
(* ------------------------------------------------------------------ *)

let test_mem_write_then_read () =
  let net = N.create "mem" in
  let wen = N.input net ~name:"wen" ~width:1 in
  let waddr = N.input net ~name:"waddr" ~width:8 in
  let wdata = N.input net ~name:"wdata" ~width:32 in
  let raddr = N.input net ~name:"raddr" ~width:8 in
  let rdata =
    N.add_mem net ~name:"m" ~size:16 ~width:32 ~raddr:(N.Ref raddr) ~wen:(N.Ref wen)
      ~waddr:(N.Ref waddr) ~wdata:(N.Ref wdata) ()
  in
  let sim = Sim.create net in
  (* Cycle 1: write 99 to address 3. *)
  Sim.set_input sim wen 1;
  Sim.set_input sim waddr 3;
  Sim.set_input sim wdata 99;
  Sim.set_input sim raddr 3;
  Sim.settle sim;
  Sim.tick sim;
  (* Read-before-write semantics: rdata latched old value 0. *)
  check Alcotest.int "same-edge read sees old value" 0 (Sim.value sim rdata);
  Sim.set_input sim wen 0;
  Sim.settle sim;
  Sim.tick sim;
  check Alcotest.int "next cycle sees 99" 99 (Sim.value sim rdata)

let test_mem_init () =
  let net = N.create "memi" in
  let raddr = N.input net ~name:"raddr" ~width:4 in
  let rdata =
    N.add_mem net ~name:"m" ~size:4 ~width:8 ~raddr:(N.Ref raddr) ~wen:N.zero
      ~waddr:(N.Const (0, 4)) ~wdata:(N.Const (0, 8)) ~init:[| 5; 6; 7; 8 |] ()
  in
  let sim = Sim.create net in
  Sim.set_input sim raddr 2;
  Sim.settle sim;
  Sim.tick sim;
  check Alcotest.int "init[2]" 7 (Sim.value sim rdata)

let test_mem_out_of_range_read_is_zero () =
  let net = N.create "memz" in
  let raddr = N.input net ~name:"raddr" ~width:8 in
  let rdata =
    N.add_mem net ~name:"m" ~size:4 ~width:8 ~raddr:(N.Ref raddr) ~wen:N.zero
      ~waddr:(N.Const (0, 8)) ~wdata:(N.Const (0, 8)) ~init:[| 1; 2; 3; 4 |] ()
  in
  let sim = Sim.create net in
  Sim.set_input sim raddr 200;
  Sim.settle sim;
  Sim.tick sim;
  check Alcotest.int "oob read" 0 (Sim.value sim rdata)

(* ------------------------------------------------------------------ *)
(* API guards & metrics                                                *)
(* ------------------------------------------------------------------ *)

let test_set_input_guard () =
  let net = N.create "g" in
  let w = N.fresh net ~name:"w" ~width:8 in
  N.assign net w (N.Const (1, 8));
  let sim = Sim.create net in
  match Sim.set_input sim w 3 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected guard"

let test_bad_width_rejected () =
  let net = N.create "w" in
  match N.fresh net ~name:"x" ~width:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected width guard"

let test_ff_bits () =
  let net = N.create "ff" in
  let _ = N.register net ~name:"a" ~width:8 (fun q -> N.Ref q) in
  let _ = N.register net ~name:"b" ~width:32 (fun q -> N.Ref q) in
  check Alcotest.int "ff bits" 40 (N.ff_bits net)

let test_lut_estimates () =
  check Alcotest.bool "divide costs more than add" true
    (N.expr_luts (N.Bin (Div, N.Const (0, 32), N.Const (0, 32)))
    > N.expr_luts (N.Bin (Add, N.Const (0, 32), N.Const (0, 32))));
  check Alcotest.int "mul counts as dsp" 1
    (N.expr_dsps (N.Bin (Mul, N.Const (0, 32), N.Const (0, 32))))

(* ------------------------------------------------------------------ *)
(* Verilog emission                                                    *)
(* ------------------------------------------------------------------ *)

let test_verilog_structure () =
  let net = N.create "my mod" in
  let a = N.input net ~name:"a" ~width:32 in
  let o = N.output net ~name:"o" ~width:32 in
  let q = N.register net ~name:"q" ~width:32 (fun _ -> N.Ref a) in
  N.assign net o (N.Ref q);
  let _ =
    N.add_mem net ~name:"m" ~size:8 ~width:32 ~raddr:(N.Ref a) ~wen:N.zero
      ~waddr:(N.Const (0, 32)) ~wdata:(N.Const (0, 32)) ()
  in
  let v = Soc_rtl.Verilog.emit net in
  check Alcotest.bool "module name sanitized" true (Tstr.contains v "module my_mod");
  check Alcotest.bool "has endmodule" true (Tstr.contains v "endmodule");
  check Alcotest.bool "has posedge block" true (Tstr.contains v "always @(posedge clk)");
  check Alcotest.bool "declares memory" true (Tstr.contains v "[0:7]");
  check Alcotest.bool "input decl" true (Tstr.contains v "input wire [31:0]")

let test_verilog_signed_ops () =
  let net = N.create "s" in
  let a = N.input net ~name:"a" ~width:32 in
  let o = N.output net ~name:"o" ~width:1 in
  N.assign net o (N.Bin (Lt, N.Ref a, N.Const (5, 32)));
  let v = Soc_rtl.Verilog.emit net in
  check Alcotest.bool "signed compare" true (Tstr.contains v "$signed")

let suite =
  [
    ("comb adder", `Quick, test_comb_adder);
    ("comb topo order", `Quick, test_comb_chain_order_independent);
    ("comb cycle rejected", `Quick, test_comb_cycle_rejected);
    ("width masking", `Quick, test_width_masking);
    ("mux", `Quick, test_mux);
    ("counter", `Quick, test_counter);
    ("counter wraps at width", `Quick, test_counter_wraps);
    ("register enable", `Quick, test_register_enable);
    ("register reset value", `Quick, test_register_reset_value);
    ("simultaneous update (swap)", `Quick, test_simultaneous_register_update);
    ("sim reset", `Quick, test_reset_api);
    ("memory write/read", `Quick, test_mem_write_then_read);
    ("memory init", `Quick, test_mem_init);
    ("memory oob read", `Quick, test_mem_out_of_range_read_is_zero);
    ("set_input guard", `Quick, test_set_input_guard);
    ("bad width rejected", `Quick, test_bad_width_rejected);
    ("ff bit accounting", `Quick, test_ff_bits);
    ("lut/dsp estimates", `Quick, test_lut_estimates);
    ("verilog structure", `Quick, test_verilog_structure);
    ("verilog signed ops", `Quick, test_verilog_signed_ops);
  ]

(* Tests for the whole-design static analyzer: the Diag framework, rate
   derivation, every diagnostic-code family over a corpus of seeded-broken
   designs, cleanliness of the case-study architectures, and the
   parse/print diagnostic-identity law. *)

open Soc_core
module Diag = Soc_util.Diag
module Analyze = Soc_analysis.Analyze
module Rates = Soc_analysis.Rates
module Layout = Soc_analysis.Layout

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let codes ds = List.sort_uniq compare (List.map (fun (d : Diag.t) -> d.Diag.code) ds)
let has_code c ds = List.exists (fun (d : Diag.t) -> d.Diag.code = c) ds

let kernels32 () =
  Soc_apps.Otsu.kernels ~width:32 ~height:32
  @ Soc_apps.Graphs.fig4_kernels ~width:32 ~height:32

(* ------------------------------------------------------------------ *)
(* Diag framework                                                      *)
(* ------------------------------------------------------------------ *)

let test_diag_rendering () =
  let d =
    Diag.error
      ~span:{ Diag.line = 4; col = 7 }
      ~code:"SOC031" ~subject:"a.x->b.y" "rates differ"
  in
  check Alcotest.string "text with file" "t.tg:4:7: error[SOC031] a.x->b.y: rates differ"
    (Diag.to_string ~file:"t.tg" d);
  check Alcotest.string "text without file" "4:7: error[SOC031] a.x->b.y: rates differ"
    (Diag.to_string d);
  let j = Diag.to_json ~file:"t.tg" d in
  check Alcotest.string "json"
    {|{"file":"t.tg","line":4,"col":7,"code":"SOC031","severity":"error","subject":"a.x->b.y","message":"rates differ"}|}
    j

let test_diag_sort_and_filters () =
  let w = Diag.warning ~code:"SOC030" ~subject:"w" "w" in
  let e = Diag.error ~code:"SOC031" ~subject:"e" "e" in
  let i = Diag.info ~code:"SOC032" ~subject:"i" "i" in
  let sorted = Diag.sort [ i; w; e ] in
  check (Alcotest.list Alcotest.string) "severity order" [ "SOC031"; "SOC030"; "SOC032" ]
    (List.map (fun (d : Diag.t) -> d.Diag.code) sorted);
  check Alcotest.int "error count" 1 (Diag.error_count sorted);
  check Alcotest.int "warning count" 1 (Diag.warning_count sorted);
  check Alcotest.bool "promote makes warnings errors" true
    (Diag.error_count (Diag.promote_warnings sorted) = 2);
  check (Alcotest.list Alcotest.string) "suppress drops by code" [ "SOC031"; "SOC032" ]
    (List.map
       (fun (d : Diag.t) -> d.Diag.code)
       (Diag.suppress ~codes:[ "SOC030" ] sorted))

(* ------------------------------------------------------------------ *)
(* Rate derivation                                                     *)
(* ------------------------------------------------------------------ *)

let test_otsu_rates_exact () =
  let pixels = 32 * 32 in
  let ks = Soc_apps.Otsu.kernels ~width:32 ~height:32 in
  let r name = Rates.of_kernel (List.assoc name ks) in
  let exact c = Option.get (Rates.exact c) in
  check Alcotest.int "grayScale pops pixels" pixels
    (exact (Rates.pop_count (r "grayScale") "imageIn"));
  check Alcotest.int "grayScale pushes pixels on CH" pixels
    (exact (Rates.push_count (r "grayScale") "imageOutCH"));
  check Alcotest.int "histogram pushes 256 bins" 256
    (exact (Rates.push_count (r "computeHistogram") "histogram"));
  check Alcotest.int "halfProbability pops 256 bins" 256
    (exact (Rates.pop_count (r "halfProbability") "histogram"));
  check Alcotest.int "halfProbability pushes one threshold" 1
    (exact (Rates.push_count (r "halfProbability") "probability"));
  check Alcotest.int "segment pops one threshold" 1
    (exact (Rates.pop_count (r "segment") "otsuThreshold"))

let test_rate_bounds_branch_and_while () =
  let open Soc_kernel.Ast.Build in
  let k =
    {
      Soc_kernel.Ast.kname = "bounds";
      ports =
        [ in_stream "a" Soc_kernel.Ty.U32; out_stream "y" Soc_kernel.Ty.U32 ];
      locals = [ ("t", Soc_kernel.Ty.U32) ];
      arrays = [];
      body =
        [
          pop "t" "a";
          if_ (v "t" >: int 0) [ push "y" (v "t") ] [];
          while_ (v "t" >: int 0) [ set "t" (v "t" -: int 1); push "y" (v "t") ];
        ];
    }
  in
  let r = Rates.of_kernel k in
  check Alcotest.string "pop exact" "1" (Rates.count_to_string (Rates.pop_count r "a"));
  (* 0..1 from the branch, then 0..unbounded from the while. *)
  check Alcotest.string "push unbounded" "0..?"
    (Rates.count_to_string (Rates.push_count r "y"))

let test_first_op_index_orders_reads () =
  let seg = List.assoc "segment" (Soc_apps.Otsu.kernels ~width:32 ~height:32) in
  let thr = Option.get (Rates.first_op_index seg "otsuThreshold") in
  let img = Option.get (Rates.first_op_index seg "grayScaleImage") in
  check Alcotest.bool "segment reads the threshold before the image" true (thr < img)

(* ------------------------------------------------------------------ *)
(* Clean designs stay clean                                            *)
(* ------------------------------------------------------------------ *)

let test_case_studies_clean () =
  List.iter
    (fun arch ->
      let spec = Soc_apps.Graphs.arch_spec arch in
      let kernels = Soc_apps.Graphs.arch_kernels arch ~width:32 ~height:32 in
      check (Alcotest.list Alcotest.string)
        (Soc_apps.Graphs.arch_name arch ^ " has no findings")
        [] (codes (Analyze.run ~kernels spec)))
    Soc_apps.Graphs.all_archs;
  check (Alcotest.list Alcotest.string) "fig4 has no findings" []
    (codes
       (Analyze.run
          ~kernels:(Soc_apps.Graphs.fig4_kernels ~width:32 ~height:32)
          Soc_apps.Graphs.fig4_spec))

(* ------------------------------------------------------------------ *)
(* Broken-spec corpus: one design per graph code                       *)
(* ------------------------------------------------------------------ *)

(* Each entry: expected code, DSL source (parsed without validation so the
   analyzer is the one reporting). *)
let graph_corpus =
  let d body = Printf.sprintf "object bad extends App {\n%s\n}" body in
  [
    ( "SOC001",
      d
        {|  tg nodes;
    tg node "A" is "p" end;
    tg node "A" is "q" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
  tg end_edges;|}
    );
    ( "SOC002",
      d
        {|  tg nodes;
    tg node "A" is "p" is "p" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
  tg end_edges;|}
    );
    ( "SOC003",
      d
        {|  tg nodes;
    tg node "A" is "p" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
    tg link 'soc to ("B", "p") end;
  tg end_edges;|}
    );
    ( "SOC004",
      d
        {|  tg nodes;
    tg node "A" is "p" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
    tg link ("A", "nope") to 'soc end;
  tg end_edges;|}
    );
    ( "SOC005",
      d
        {|  tg nodes;
    tg node "A" i "r" is "p" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
    tg link ("A", "r") to 'soc end;
  tg end_edges;|}
    );
    ( "SOC006",
      d
        {|  tg nodes;
    tg node "A" is "p" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
    tg connect "A";
  tg end_edges;|}
    );
    ( "SOC007",
      d
        {|  tg nodes;
    tg node "A" is "p" end;
    tg node "B" is "q" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
    tg link ("A", "p") to ("B", "q") end;
  tg end_edges;|}
    );
    ( "SOC008",
      d
        {|  tg nodes;
    tg node "A" is "p" end;
    tg node "B" is "q" end;
    tg node "C" is "r" end;
  tg end_nodes;
  tg edges;
    tg link ("A", "p") to ("B", "q") end;
    tg link ("A", "p") to ("C", "r") end;
  tg end_edges;|}
    );
    ( "SOC009",
      d
        {|  tg nodes;
    tg node "A" is "p" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
    tg link 'soc to 'soc end;
  tg end_edges;|}
    );
    ( "SOC010",
      d
        {|  tg nodes;
    tg node "A" is "p" is "q" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("A", "p") end;
  tg end_edges;|}
    );
  ]

let test_graph_corpus () =
  List.iter
    (fun (code, src) ->
      let spec = Parser.parse ~validate:false src in
      let ds = Spec.validate_diags spec in
      check Alcotest.bool (code ^ " reported") true (has_code code ds);
      check Alcotest.bool (code ^ " has a span") true
        (List.exists
           (fun (d : Diag.t) -> d.Diag.code = code && d.Diag.span <> None)
           ds))
    graph_corpus

let test_unattached_lite_node_warns () =
  (* SOC011 (no interface) and SOC012 (register node never referenced) are
     not expressible in the concrete syntax, so build the spec directly. *)
  let spec =
    {
      Spec.design_name = "d";
      nodes = [ Spec.make_node "A" [ ("r", Spec.Lite) ] ];
      edges = [];
    }
  in
  let ds = Spec.validate_diags spec in
  check Alcotest.bool "SOC012 reported" true (has_code "SOC012" ds);
  check Alcotest.bool "as a warning" true
    (List.for_all
       (fun (d : Diag.t) ->
         d.Diag.code <> "SOC012" || d.Diag.severity = Diag.Warning)
       ds);
  let empty = { spec with Spec.nodes = [ Spec.make_node "A" [] ] } in
  check Alcotest.bool "SOC011 reported" true
    (has_code "SOC011" (Spec.validate_diags empty))

(* ------------------------------------------------------------------ *)
(* Kernel-level codes                                                  *)
(* ------------------------------------------------------------------ *)

let spec_one_node ports =
  {
    Spec.design_name = "d";
    nodes = [ Spec.make_node "N" ports ];
    edges =
      List.filter_map
        (fun (p, kind) ->
          if kind <> Spec.Stream then None
          else if p = "a" then Some (Spec.link_edge Spec.Soc (Spec.Port ("N", p)))
          else Some (Spec.link_edge (Spec.Port ("N", p)) Spec.Soc))
        ports;
  }

let test_interface_codes () =
  let open Soc_kernel.Ast.Build in
  let u32 = Soc_kernel.Ty.U32 in
  let kernel ports body =
    { Soc_kernel.Ast.kname = "k"; ports; locals = [ ("t", u32) ]; arrays = []; body }
  in
  let passthrough =
    kernel
      [ in_stream "a" u32; out_stream "y" u32 ]
      [ pop "t" "a"; push "y" (v "t") ]
  in
  let spec = spec_one_node [ ("a", Spec.Stream); ("y", Spec.Stream) ] in
  (* SOC020: no kernel for the node. *)
  check Alcotest.bool "SOC020" true
    (has_code "SOC020" (Analyze.run ~kernels:[ ("M", passthrough) ] spec));
  (* SOC021: DSL declares a port the kernel lacks. *)
  let spec3 =
    spec_one_node [ ("a", Spec.Stream); ("y", Spec.Stream); ("extra", Spec.Lite) ]
  in
  check Alcotest.bool "SOC021" true
    (has_code "SOC021" (Analyze.run ~kernels:[ ("N", passthrough) ] spec3));
  (* SOC022: kernel has a port the DSL does not declare. *)
  let spec2 = spec_one_node [ ("a", Spec.Stream) ] in
  check Alcotest.bool "SOC022" true
    (has_code "SOC022" (Analyze.run ~kernels:[ ("N", passthrough) ] spec2));
  (* SOC023: DSL says 'lite where the kernel has a stream. *)
  let spec_kind = spec_one_node [ ("a", Spec.Stream); ("y", Spec.Lite) ] in
  check Alcotest.bool "SOC023" true
    (has_code "SOC023" (Analyze.run ~kernels:[ ("N", passthrough) ] spec_kind));
  (* SOC024: links drive a port as input, kernel pushes to it. *)
  let backwards =
    kernel
      [ out_stream "a" u32; in_stream "y" u32 ]
      [ pop "t" "y"; push "a" (v "t") ]
  in
  check Alcotest.bool "SOC024" true
    (has_code "SOC024" (Analyze.run ~kernels:[ ("N", backwards) ] spec))

let test_typecheck_codes_lifted () =
  let open Soc_kernel.Ast.Build in
  let u32 = Soc_kernel.Ty.U32 in
  let base body arrays =
    {
      Soc_kernel.Ast.kname = "k";
      ports = [ in_stream "a" u32; out_stream "y" u32 ];
      locals = [ ("t", u32) ];
      arrays;
      body;
    }
  in
  let cases =
    [
      ("KRN101", base [ pop "t" "a"; push "y" (v "ghost") ] []);
      ("KRN102", base [ pop "t" "a"; push "y" (load "ghost" (int 0)) ] []);
      ("KRN103", base [ pop "t" "ghost"; push "y" (v "t") ] []);
      ( "KRN104",
        {
          (base [ pop "t" "a"; push "y" (v "t") ] []) with
          Soc_kernel.Ast.locals = [ ("t", u32); ("t", u32) ];
        } );
      ("KRN105", base [ pop "t" "y"; push "y" (v "t") ] []);
      ("KRN106", base [ pop "t" "a"; push "a" (v "t") ] []);
      ( "KRN107",
        {
          (base [ set "a" (int 1); pop "t" "s"; push "y" (v "t") ] []) with
          Soc_kernel.Ast.ports =
            [ in_scalar "a" u32; in_stream "s" u32; out_stream "y" u32 ];
        } );
      ( "KRN108",
        base
          [ pop "t" "a"; push "y" (load "m" (int 9)) ]
          [ array "m" u32 4 ] );
      ( "KRN109",
        base [ pop "t" "a"; push "y" (v "t") ] [ array "m" u32 0 ] );
      ( "KRN110",
        base
          [ pop "t" "a"; push "y" (v "t") ]
          [ array ~init:[| 1; 2; 3 |] "m" u32 4 ] );
    ]
  in
  List.iter
    (fun (code, k) ->
      match Soc_kernel.Typecheck.check k with
      | Ok () -> Alcotest.failf "%s: kernel unexpectedly typechecks" code
      | Error errs ->
        check Alcotest.bool (code ^ " mapped") true
          (List.exists (fun e -> Analyze.typecheck_code e = code) errs))
    cases;
  (* And the lift: a broken kernel surfaces through Analyze.run. *)
  let spec = spec_one_node [ ("a", Spec.Stream); ("y", Spec.Stream) ] in
  let broken = base [ pop "t" "a"; push "y" (v "ghost") ] [] in
  check Alcotest.bool "lifted into the run" true
    (has_code "KRN101" (Analyze.run ~kernels:[ ("N", broken) ] spec))

(* ------------------------------------------------------------------ *)
(* Rate and deadlock codes                                             *)
(* ------------------------------------------------------------------ *)

let rate_deadlock_source =
  {|object RateDeadlock extends App {
  tg nodes;
    tg node "grayScale" is "imageIn" is "imageOutCH" is "imageOutSEG" end;
    tg node "computeHistogram" is "grayScaleImage" is "histogram" end;
    tg node "segment" is "grayScaleImage" is "otsuThreshold" is "segmentedGrayImage" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("grayScale", "imageIn") end;
    tg link ("grayScale", "imageOutCH") to ("computeHistogram", "grayScaleImage") end;
    tg link ("grayScale", "imageOutSEG") to 'soc end;
    tg link ("computeHistogram", "histogram") to ("segment", "grayScaleImage") end;
    tg link 'soc to ("segment", "otsuThreshold") end;
    tg link ("segment", "segmentedGrayImage") to 'soc end;
  tg end_edges;
}|}

let test_rate_codes () =
  (* SOC031: histogram pushes 256 beats, segment pops 1024 — starvation. *)
  let spec = Parser.parse rate_deadlock_source in
  let ds = Analyze.run ~kernels:(kernels32 ()) spec in
  check Alcotest.bool "SOC031 reported" true (has_code "SOC031" ds);
  check Alcotest.bool "SOC031 is an error" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "SOC031" && d.Diag.severity = Diag.Error)
       ds);
  (* SOC030: reversed — segment's image stream into halfProbability, which
     pops only 256 of the 1024 beats. *)
  let flood =
    {|object Flood extends App {
  tg nodes;
    tg node "grayScale" is "imageIn" is "imageOutCH" is "imageOutSEG" end;
    tg node "halfProbability" is "histogram" is "probability" end;
  tg end_nodes;
  tg edges;
    tg link 'soc to ("grayScale", "imageIn") end;
    tg link ("grayScale", "imageOutCH") to ("halfProbability", "histogram") end;
    tg link ("grayScale", "imageOutSEG") to 'soc end;
    tg link ("halfProbability", "probability") to 'soc end;
  tg end_edges;
}|}
  in
  let ds = Analyze.run ~kernels:(kernels32 ()) (Parser.parse flood) in
  check Alcotest.bool "SOC030 reported as warning" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.code = "SOC030" && d.Diag.severity = Diag.Warning)
       ds);
  check Alcotest.bool "SOC030 alone does not make errors" false (Diag.has_errors ds)

let test_unknown_rate_is_info () =
  let open Soc_kernel.Ast.Build in
  let u32 = Soc_kernel.Ty.U32 in
  (* A data-dependent producer: pushes while the popped value is nonzero. *)
  let producer =
    {
      Soc_kernel.Ast.kname = "p";
      ports = [ in_stream "a" u32; out_stream "y" u32 ];
      locals = [ ("t", u32) ];
      arrays = [];
      body = [ pop "t" "a"; while_ (v "t" >: int 0) [ push "y" (v "t"); set "t" (v "t" -: int 1) ] ];
    }
  in
  let consumer =
    {
      Soc_kernel.Ast.kname = "c";
      ports = [ in_stream "x" u32; out_stream "z" u32 ];
      locals = [ ("t", u32) ];
      arrays = [];
      body = [ pop "t" "x"; push "z" (v "t") ];
    }
  in
  let spec =
    {
      Spec.design_name = "d";
      nodes =
        [
          Spec.make_node "P" [ ("a", Spec.Stream); ("y", Spec.Stream) ];
          Spec.make_node "C" [ ("x", Spec.Stream); ("z", Spec.Stream) ];
        ];
      edges =
        [
          Spec.link_edge Spec.Soc (Spec.Port ("P", "a"));
          Spec.link_edge (Spec.Port ("P", "y")) (Spec.Port ("C", "x"));
          Spec.link_edge (Spec.Port ("C", "z")) Spec.Soc;
        ];
    }
  in
  let ds = Analyze.run ~kernels:[ ("P", producer); ("C", consumer) ] spec in
  check Alcotest.bool "SOC032 reported" true (has_code "SOC032" ds);
  check Alcotest.bool "only info" false (Diag.has_errors ds)

let test_fifo_depth_deadlock_warning () =
  (* Arch4's diamond at 48x48: grayScale buffers 2304 beats on the SEG
     branch while segment first waits for the threshold — more than the
     default 1024-deep FIFO holds. *)
  let spec = Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4 in
  let kernels = Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch4 ~width:48 ~height:48 in
  let ds = Analyze.run ~kernels spec in
  check Alcotest.bool "SOC033 reported" true (has_code "SOC033" ds);
  check Alcotest.bool "as a warning, not an error" false (Diag.has_errors ds);
  (* A deep enough FIFO silences it. *)
  let deep =
    { Soc_platform.Config.zedboard with Soc_platform.Config.default_fifo_depth = 4096 }
  in
  check Alcotest.bool "silent at depth 4096" false
    (has_code "SOC033" (Analyze.run ~config:deep ~kernels spec))

let test_preflight_refuses_deadlock_design () =
  (* The acceptance case: this design used to pass the flow and only die
     at co-simulation with Deadlock; the analyzer now refuses the build
     with a diagnostic. *)
  let spec = Parser.parse rate_deadlock_source in
  let kernels = kernels32 () in
  check Alcotest.bool "pre-flight has errors" true
    (Diag.has_errors (Flow.pre_flight spec ~kernels));
  match Flow.build spec ~kernels with
  | exception Flow.Build_error msg ->
    check Alcotest.bool "names the code" true
      (Tstr.contains msg "SOC031");
    check Alcotest.bool "names the link" true
      (Tstr.contains msg "computeHistogram.histogram->segment.grayScaleImage")
  | _ -> Alcotest.fail "expected the build to be refused"

(* ------------------------------------------------------------------ *)
(* Shared-memory races (SOC040)                                        *)
(* ------------------------------------------------------------------ *)

let test_race_detection () =
  let htg = Soc_apps.Graphs.fig1_htg in
  (* ADD and MUL are concurrently schedulable (both fan out of N1). *)
  let overlapping =
    [ ("ADD", (0x1000, 0x100)); ("MUL", (0x1080, 0x100)) ]
  in
  let ds = Analyze.races ~htg ~regions:overlapping in
  check Alcotest.bool "SOC040 reported" true (has_code "SOC040" ds);
  (* N1 -> ADD are ordered by a precedence edge: same region is fine. *)
  let ordered = [ ("N1", (0x1000, 0x100)); ("ADD", (0x1000, 0x100)) ] in
  check (Alcotest.list Alcotest.string) "ordered nodes may share" []
    (codes (Analyze.races ~htg ~regions:ordered));
  (* Disjoint regions between concurrent nodes are fine. *)
  let disjoint = [ ("ADD", (0x1000, 0x100)); ("MUL", (0x2000, 0x100)) ] in
  check (Alcotest.list Alcotest.string) "disjoint regions are clean" []
    (codes (Analyze.races ~htg ~regions:disjoint));
  (* And through run, driven by the HTG + region plan. *)
  let spec = Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch1 in
  let kernels = Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch1 ~width:32 ~height:32 in
  check Alcotest.bool "run surfaces the race" true
    (has_code "SOC040" (Analyze.run ~kernels ~htg ~regions:overlapping spec))

(* ------------------------------------------------------------------ *)
(* Address map and resource budget (RES2xx)                            *)
(* ------------------------------------------------------------------ *)

let test_address_overlap () =
  let map = [ ("a", 0x4000_0000, 0x1_0000); ("b", 0x4000_8000, 0x1_0000) ] in
  (match Layout.address_overlaps map with
  | [ ("a", "b", addr) ] -> check Alcotest.int "first overlap" 0x4000_8000 addr
  | _ -> Alcotest.fail "expected exactly one overlap");
  let spec = Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch1 in
  check Alcotest.bool "derived maps never overlap" true
    (Layout.address_overlaps (Layout.address_map_of_spec spec) = []);
  check Alcotest.bool "RES201 through run" true
    (has_code "RES201" (Analyze.run ~address_map:map spec))

let test_resource_budget () =
  let spec = Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4 in
  let kernels = Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch4 ~width:32 ~height:32 in
  let huge = { Soc_hls.Report.lut = 60_000; ff = 10_000; bram18 = 10; dsp = 0 } in
  let ds =
    Analyze.run ~kernels ~resources:[ ("grayScale", huge) ] spec
  in
  check Alcotest.bool "RES210 over budget" true (has_code "RES210" ds);
  check Alcotest.bool "RES210 is an error" true (Diag.has_errors ds);
  (* Pick a grayScale usage that lands the whole design at ~95% LUT:
     warn-but-fit territory, computed against the same estimates the
     analyzer uses for the other nodes. *)
  let fifo_depth =
    Soc_platform.Config.zedboard.Soc_platform.Config.default_fifo_depth
  in
  let others =
    Soc_hls.Report.sum
      (Layout.integration_resources spec ~fifo_depth
      :: List.filter_map
           (fun (name, k) ->
             if name = "grayScale" then None
             else Some (Analyze.estimate_kernel_resources k))
           kernels)
  in
  let device = Soc_hls.Report.zynq_7z020 in
  let near =
    {
      Soc_hls.Report.lut = (device.Soc_hls.Report.d_lut * 95 / 100) - others.Soc_hls.Report.lut;
      ff = 1_000;
      bram18 = 2;
      dsp = 0;
    }
  in
  let ds = Analyze.run ~kernels ~resources:[ ("grayScale", near) ] spec in
  check Alcotest.bool "RES211 near budget" true (has_code "RES211" ds);
  check Alcotest.bool "RES211 is only a warning" false (Diag.has_errors ds)

let test_estimates_are_sane () =
  List.iter
    (fun (name, k) ->
      let u = Analyze.estimate_kernel_resources k in
      check Alcotest.bool (name ^ " estimate positive") true
        (u.Soc_hls.Report.lut > 0 && u.Soc_hls.Report.ff > 0);
      check Alcotest.bool (name ^ " estimate fits alone") true
        (Soc_hls.Report.fits u))
    (kernels32 ())

(* ------------------------------------------------------------------ *)
(* Runtime findings share the renderer                                 *)
(* ------------------------------------------------------------------ *)

let test_stream_violation_diags () =
  let d =
    Soc_axi.Stream_rules.to_diag
      (Soc_axi.Stream_rules.Valid_dropped { channel = "ch"; cycle = 7 })
  in
  check Alcotest.string "code" "RUN301" d.Diag.code;
  check Alcotest.string "subject" "ch" d.Diag.subject;
  let d =
    Soc_axi.Stream_rules.to_diag
      (Soc_axi.Stream_rules.Data_changed
         { channel = "ch"; cycle = 9; before = 1; after = 2 })
  in
  check Alcotest.string "code" "RUN302" d.Diag.code;
  check Alcotest.bool "renders like static diags" true
    (Tstr.contains (Diag.to_string d) "error[RUN302] ch:")

let test_chaos_outcome_diags () =
  (* A clean campaign yields no findings; recovery yields RUN31x. *)
  let clean =
    Soc_apps.Chaos_runner.run ~width:8 ~height:8 ~seed:3 ~n_faults:0
      Soc_apps.Graphs.Arch1
  in
  check (Alcotest.list Alcotest.string) "clean campaign" []
    (codes (Soc_apps.Chaos_runner.diags clean));
  let noisy =
    Soc_apps.Chaos_runner.run ~width:8 ~height:8 ~seed:3 ~n_faults:4
      Soc_apps.Graphs.Arch1
  in
  List.iter
    (fun (d : Diag.t) ->
      check Alcotest.bool "RUN31x code" true
        (List.mem d.Diag.code [ "RUN310"; "RUN311"; "RUN312" ]))
    (Soc_apps.Chaos_runner.diags noisy)

(* ------------------------------------------------------------------ *)
(* Spans and the parse/print diagnostic-identity law                   *)
(* ------------------------------------------------------------------ *)

let test_spans_point_at_source () =
  let src =
    "object d extends App {\n  tg nodes;\n    tg node \"A\" is \"p\" is \"q\" end;\n\
     \  tg end_nodes;\n  tg edges;\n    tg link 'soc to (\"A\", \"p\") end;\n\
     \  tg end_edges;\n}"
  in
  let spec = Parser.parse ~validate:false src in
  (match Spec.node_span spec "A" with
  | Some { Diag.line = 3; _ } -> ()
  | other ->
    Alcotest.failf "node span %s"
      (match other with
      | None -> "missing"
      | Some { Diag.line; col } -> Printf.sprintf "%d:%d" line col));
  (* SOC010 for the dangling "q" port carries the node's span. *)
  check Alcotest.bool "diagnostic carries the span" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.code = "SOC010"
         && d.Diag.span = Some { Diag.line = 3; col = 5 })
       (Spec.validate_diags spec))

let strip_spans_of_diags ds =
  List.map (fun (d : Diag.t) -> { d with Diag.span = None }) ds

(* Parsing the printed form of a spec yields the very same diagnostics
   (modulo source spans, which programmatic specs lack). Mutating the spec
   first makes the property meaningful for broken designs too. *)
let prop_print_parse_same_diags =
  QCheck.Test.make ~name:"parse-of-print preserves diagnostics" ~count:100
    (QCheck.make Test_dsl.random_spec_gen)
    (fun spec ->
      let mutated =
        match spec.Spec.edges with
        | [] -> spec
        | _ :: rest -> { spec with Spec.edges = rest }
      in
      let reparsed = Parser.parse ~validate:false (Printer.to_source mutated) in
      strip_spans_of_diags (Spec.validate_diags mutated)
      = strip_spans_of_diags (Spec.validate_diags reparsed))

let suite =
  [
    ("diag rendering (text + json)", `Quick, test_diag_rendering);
    ("diag sort / Werror / suppress", `Quick, test_diag_sort_and_filters);
    ("otsu kernel rates are exact", `Quick, test_otsu_rates_exact);
    ("rate bounds: branches and while", `Quick, test_rate_bounds_branch_and_while);
    ("first-op index orders reads", `Quick, test_first_op_index_orders_reads);
    ("case studies analyze clean", `Quick, test_case_studies_clean);
    ("graph corpus: one design per code", `Quick, test_graph_corpus);
    ("SOC011/SOC012: interface-less and unattached nodes", `Quick,
     test_unattached_lite_node_warns);
    ("SOC02x: interface mismatches", `Quick, test_interface_codes);
    ("KRN1xx: typecheck errors lifted", `Quick, test_typecheck_codes_lifted);
    ("SOC030/031: rate mismatches", `Quick, test_rate_codes);
    ("SOC032: data-dependent rates are info", `Quick, test_unknown_rate_is_info);
    ("SOC033: FIFO-depth deadlock warning", `Quick, test_fifo_depth_deadlock_warning);
    ("pre-flight refuses the cosim-deadlock design", `Quick,
     test_preflight_refuses_deadlock_design);
    ("SOC040: shared-memory races", `Quick, test_race_detection);
    ("RES201: address overlaps", `Quick, test_address_overlap);
    ("RES210/211: resource budget", `Quick, test_resource_budget);
    ("resource estimates sane", `Quick, test_estimates_are_sane);
    ("RUN301/302: protocol violations as diags", `Quick, test_stream_violation_diags);
    ("RUN31x: chaos outcomes as diags", `Quick, test_chaos_outcome_diags);
    ("spans point at source", `Quick, test_spans_point_at_source);
    qtest prop_print_parse_same_diags;
  ]

(* Test entry point: one alcotest run over all library suites. *)

let () =
  Alcotest.run "soc-dsl-repro"
    [
      ("util", Test_util.suite);
      ("htg", Test_htg.suite);
      ("kernel", Test_kernel.suite);
      ("rtl", Test_rtl.suite);
      ("hls", Test_hls.suite);
      ("axi", Test_axi.suite);
      ("platform", Test_platform.suite);
      ("dsl", Test_dsl.suite);
      ("analysis", Test_analysis.suite);
      ("flow", Test_flow.suite);
      ("apps", Test_apps.suite);
      ("integration", Test_integration.suite);
      ("dse", Test_dse.suite);
      ("opt", Test_opt.suite);
      ("extensions", Test_extensions.suite);
      ("workloads", Test_workloads.suite);
      ("cosim", Test_cosim.suite);
      ("csim", Test_csim.suite);
      ("fault", Test_fault.suite);
      ("perf", Test_perf.suite);
      ("farm", Test_farm.suite);
      ("journal", Test_journal.suite);
      ("serve", Test_serve.suite);
      ("remote", Test_remote.suite);
      ("verify", Test_verify.suite);
      ("tune", Test_tune.suite);
    ]

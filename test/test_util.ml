(* Unit and property tests for Soc_util: fixed-width arithmetic, metrics,
   deterministic RNG, table/dot rendering. *)

open Soc_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Bits                                                                *)
(* ------------------------------------------------------------------ *)

let test_mask () =
  check Alcotest.int "mask 1" 1 (Bits.mask 1);
  check Alcotest.int "mask 8" 255 (Bits.mask 8);
  check Alcotest.int "mask 32" 0xFFFFFFFF (Bits.mask 32)

let test_mask_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bits.mask: width must be in 1..32")
    (fun () -> ignore (Bits.mask 0));
  Alcotest.check_raises "width 33" (Invalid_argument "Bits.mask: width must be in 1..32")
    (fun () -> ignore (Bits.mask 33))

let test_signed_roundtrip () =
  check Alcotest.int "-1 in 8 bits" 255 (Bits.of_signed ~width:8 (-1));
  check Alcotest.int "255 as signed 8" (-1) (Bits.to_signed ~width:8 255);
  check Alcotest.int "127 as signed 8" 127 (Bits.to_signed ~width:8 127);
  check Alcotest.int "128 as signed 8" (-128) (Bits.to_signed ~width:8 128)

let test_wrapping_add () =
  check Alcotest.int "8-bit wrap" 0 (Bits.add ~width:8 255 1);
  check Alcotest.int "32-bit wrap" 0 (Bits.add ~width:32 0xFFFFFFFF 1);
  check Alcotest.int "sub wrap" 255 (Bits.sub ~width:8 0 1)

let test_div_by_zero () =
  check Alcotest.int "udiv by 0 = all ones" 255 (Bits.udiv ~width:8 7 0);
  check Alcotest.int "urem by 0 = numerator" 7 (Bits.urem ~width:8 7 0);
  check Alcotest.int "sdiv by 0 = all ones" (Bits.mask 32) (Bits.sdiv ~width:32 7 0)

let test_shifts () =
  check Alcotest.int "shl" 8 (Bits.shl ~width:8 1 3);
  check Alcotest.int "shl overflow" 0 (Bits.shl ~width:8 1 8);
  check Alcotest.int "lshr" 1 (Bits.lshr ~width:8 8 3);
  check Alcotest.int "ashr sign" 255 (Bits.ashr ~width:8 0x80 7);
  check Alcotest.int "ashr positive" 0x20 (Bits.ashr ~width:8 0x40 1)

let test_comparisons () =
  check Alcotest.bool "ult" true (Bits.ult ~width:8 3 200);
  check Alcotest.bool "slt wrapped" true (Bits.slt ~width:8 200 3)
  (* 200 = -56 signed *)

let test_address_width () =
  check Alcotest.int "1 value" 1 (Bits.address_width 1);
  check Alcotest.int "2 values" 1 (Bits.address_width 2);
  check Alcotest.int "3 values" 2 (Bits.address_width 3);
  check Alcotest.int "256 values" 8 (Bits.address_width 256);
  check Alcotest.int "257 values" 9 (Bits.address_width 257)

(* Property: our 32-bit ops agree with Int64 arithmetic truncated. *)
let int32_pair = QCheck.pair (QCheck.int_bound 0x3FFFFFFF) (QCheck.int_bound 0x3FFFFFFF)

let prop_add_matches_int64 =
  QCheck.Test.make ~name:"Bits.add agrees with Int64" ~count:500 int32_pair (fun (a, b) ->
      let expect =
        Int64.to_int (Int64.logand (Int64.add (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL)
      in
      Bits.add ~width:32 a b = expect)

let prop_mul_matches_int64 =
  QCheck.Test.make ~name:"Bits.mul agrees with Int64" ~count:500 int32_pair (fun (a, b) ->
      let expect =
        Int64.to_int (Int64.logand (Int64.mul (Int64.of_int a) (Int64.of_int b)) 0xFFFFFFFFL)
      in
      Bits.mul ~width:32 a b = expect)

let prop_signed_involution =
  QCheck.Test.make ~name:"of_signed (to_signed v) = v" ~count:500
    (QCheck.int_bound 0xFFFF) (fun v ->
      Bits.of_signed ~width:16 (Bits.to_signed ~width:16 v) = v)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_basic () =
  let m = Metrics.of_string "a b\n\n  \ncd\n" in
  check Alcotest.int "lines" 4 m.Metrics.lines;
  check Alcotest.int "non-blank" 2 m.Metrics.nonblank_lines;
  check Alcotest.int "chars" 4 m.Metrics.chars

let test_metrics_empty () =
  let m = Metrics.of_string "" in
  check Alcotest.int "lines" 0 m.Metrics.lines;
  check Alcotest.int "chars" 0 m.Metrics.chars

let test_metrics_no_trailing_newline () =
  let m = Metrics.of_string "one\ntwo" in
  check Alcotest.int "lines" 2 m.Metrics.lines

let test_ratio () =
  check (Alcotest.float 0.001) "ratio" 2.5 (Metrics.ratio ~num:5 ~den:2);
  check (Alcotest.float 0.001) "ratio by zero" 0.0 (Metrics.ratio ~num:5 ~den:0)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same sequence" xs ys

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done

let test_rng_copy_independent () =
  let a = Rng.create 11 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  let xa = Rng.int a 1000 and xb = Rng.int b 1000 in
  check Alcotest.int "copy continues identically" xa xb

let test_rng_float_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_choose () =
  let r = Rng.create 1 in
  let l = [ 1; 2; 3 ] in
  for _ = 1 to 50 do
    if not (List.mem (Rng.choose r l) l) then Alcotest.fail "choose out of list"
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose r []))

let test_rng_shuffle_permutation () =
  let r = Rng.create 9 in
  let arr = Array.init 30 Fun.id in
  let s = Rng.shuffle r arr in
  check
    (Alcotest.list Alcotest.int)
    "same multiset"
    (List.sort compare (Array.to_list s))
    (Array.to_list arr)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"T" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  check Alcotest.bool "contains title" true (String.length s > 0 && s.[0] = 'T');
  check Alcotest.bool "contains data"
    true
    (Tstr.contains s "333")

let test_table_alignment () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] ~title:"" [ "x"; "y" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let s = Table.render t in
  check Alcotest.bool "right-aligned short value" true
    (Tstr.contains s "|  1 |")

let test_table_missing_cells () =
  let t = Table.create ~title:"" [ "a"; "b"; "c" ] in
  Table.add_row t [ "1" ];
  let s = Table.render t in
  check Alcotest.bool "renders" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dot_render () =
  let d = Dot.create "g" in
  Dot.add_node d ~id:"a b" ~label:"A \"quoted\"";
  Dot.add_node d ~id:"c" ~label:"C";
  Dot.add_edge d ~src:"a b" ~dst:"c";
  Dot.add_cluster d ~id:"k" ~label:"cl" [ "c" ];
  let s = Dot.render d in
  check Alcotest.bool "sanitized id" true (Tstr.contains s "a_b");
  check Alcotest.bool "escaped quote" true (Tstr.contains s "\\\"quoted\\\"");
  check Alcotest.bool "cluster" true (Tstr.contains s "subgraph cluster_k");
  check Alcotest.bool "edge" true (Tstr.contains s "a_b -> c")

let test_counters () =
  let c = Metrics.Counters.create () in
  check Alcotest.int "absent is zero" 0 (Metrics.Counters.get c "injected");
  Metrics.Counters.incr c "injected";
  Metrics.Counters.incr c "injected";
  Metrics.Counters.add c "detected" 3;
  check Alcotest.int "incr" 2 (Metrics.Counters.get c "injected");
  check Alcotest.int "add" 3 (Metrics.Counters.get c "detected");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted listing"
    [ ("detected", 3); ("injected", 2) ]
    (Metrics.Counters.to_list c);
  check Alcotest.string "rendering" "detected=3 injected=2"
    (Format.asprintf "%a" Metrics.Counters.pp c)

(* With base 1 and ratio 2 over 4 buckets, upper bounds are 1, 2, 4, 8
   and anything past 8 lands in the overflow bucket (reported as 8). *)
let small_hist () = Metrics.Histogram.create ~base:1.0 ~ratio:2.0 ~buckets:4 ()

let test_histogram_quantiles () =
  let hst = small_hist () in
  List.iter (Metrics.Histogram.observe hst) [ 0.5; 1.5; 3.0; 6.0 ];
  check Alcotest.int "count" 4 (Metrics.Histogram.count hst);
  check (Alcotest.float 1e-9) "sum" 11.0 (Metrics.Histogram.sum hst);
  check (Alcotest.float 1e-9) "mean" 2.75 (Metrics.Histogram.mean hst);
  check (Alcotest.float 1e-9) "q0.25 = first bucket bound" 1.0
    (Metrics.Histogram.quantile hst 0.25);
  check (Alcotest.float 1e-9) "p50" 2.0 (Metrics.Histogram.p50 hst);
  check (Alcotest.float 1e-9) "p95" 8.0 (Metrics.Histogram.p95 hst);
  check (Alcotest.float 1e-9) "p99" 8.0 (Metrics.Histogram.p99 hst)

let test_histogram_empty_and_overflow () =
  let hst = small_hist () in
  check (Alcotest.float 1e-9) "empty p50 is 0" 0.0 (Metrics.Histogram.p50 hst);
  check Alcotest.int "empty count" 0 (Metrics.Histogram.count hst);
  Metrics.Histogram.observe hst 1000.0;
  (* The overflow bucket reports the last finite bound, never infinity. *)
  check (Alcotest.float 1e-9) "overflow quantile" 8.0 (Metrics.Histogram.quantile hst 1.0)

let test_histogram_to_list_deterministic () =
  let hst = small_hist () in
  List.iter (Metrics.Histogram.observe hst) [ 6.0; 0.5; 3.0; 1.5; 100.0 ];
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 1e-9) Alcotest.int))
    "non-empty buckets ascending"
    [ (1.0, 1); (2.0, 1); (4.0, 1); (8.0, 1); (8.0, 1) ]
    (Metrics.Histogram.to_list hst);
  check Alcotest.string "pp renders the quantiles" "n=5 mean=22.2 p50=4 p95=8 p99=8"
    (Format.asprintf "%a" Metrics.Histogram.pp hst);
  check Alcotest.bool "json carries count and buckets" true
    (let j = Metrics.Histogram.to_json hst in
     Tstr.contains j "\"count\":5" && Tstr.contains j "\"le\":1")

let test_histogram_validation () =
  List.iter
    (fun f ->
      check Alcotest.bool "invalid config rejected" true
        (match f () with exception Invalid_argument _ -> true | _ -> false))
    [ (fun () -> Metrics.Histogram.create ~base:0.0 ());
      (fun () -> Metrics.Histogram.create ~ratio:1.0 ());
      (fun () -> Metrics.Histogram.create ~buckets:0 ()) ]

let prop_histogram_quantiles_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone in q" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (QCheck.float_range 0.0 1e6))
    (fun xs ->
      let hst = Metrics.Histogram.create () in
      List.iter (Metrics.Histogram.observe hst) xs;
      Metrics.Histogram.count hst = List.length xs
      && Metrics.Histogram.p50 hst <= Metrics.Histogram.p95 hst
      && Metrics.Histogram.p95 hst <= Metrics.Histogram.p99 hst)

let suite =
  [
    ("mask widths", `Quick, test_mask);
    ("mask rejects bad widths", `Quick, test_mask_invalid);
    ("signed round-trip", `Quick, test_signed_roundtrip);
    ("wrapping add/sub", `Quick, test_wrapping_add);
    ("division by zero semantics", `Quick, test_div_by_zero);
    ("shifts", `Quick, test_shifts);
    ("signed vs unsigned comparison", `Quick, test_comparisons);
    ("address_width", `Quick, test_address_width);
    ("metrics counts", `Quick, test_metrics_basic);
    ("metrics empty", `Quick, test_metrics_empty);
    ("metrics trailing newline", `Quick, test_metrics_no_trailing_newline);
    ("metrics ratio", `Quick, test_ratio);
    ("metrics counters", `Quick, test_counters);
    ("histogram quantiles", `Quick, test_histogram_quantiles);
    ("histogram empty and overflow", `Quick, test_histogram_empty_and_overflow);
    ("histogram deterministic listing", `Quick, test_histogram_to_list_deterministic);
    ("histogram validation", `Quick, test_histogram_validation);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng copy", `Quick, test_rng_copy_independent);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng choose", `Quick, test_rng_choose);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutation);
    ("table render", `Quick, test_table_render);
    ("table alignment", `Quick, test_table_alignment);
    ("table ragged rows", `Quick, test_table_missing_cells);
    ("dot render", `Quick, test_dot_render);
    qtest prop_add_matches_int64;
    qtest prop_mul_matches_int64;
    qtest prop_signed_involution;
    qtest prop_histogram_quantiles_monotone;
  ]

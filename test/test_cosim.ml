(* Tests for the mixed-abstraction co-simulation (behavioural accelerator
   engine) and for the VCD waveform recorder. *)

module Exec = Soc_platform.Executive

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Behavioural engine                                                  *)
(* ------------------------------------------------------------------ *)

let test_behavioral_lite_accel () =
  let sys = Soc_platform.System.create () in
  ignore (Soc_platform.System.add_accel_behavioral sys ~name:"ADD" Soc_apps.Filters.add_kernel);
  let exec = Exec.create sys in
  Exec.set_arg exec ~accel:"ADD" ~port:"A" 40;
  Exec.set_arg exec ~accel:"ADD" ~port:"B" 2;
  Exec.start_accel exec "ADD";
  Exec.wait_accel exec "ADD";
  check Alcotest.int "result" 42 (Exec.get_arg exec ~accel:"ADD" ~port:"return_")

let test_behavioral_stream_system () =
  (* Whole Otsu Arch4 with behavioural accelerators: same image as RTL. *)
  let width = 16 and height = 16 in
  let pixels = width * height in
  let golden, _ = Soc_apps.Otsu_runner.golden ~width ~height () in
  let spec = Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4 in
  let build =
    Soc_core.Flow.build ~fifo_depth:(pixels + 16) spec
      ~kernels:(Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch4 ~width ~height)
  in
  let live = Soc_core.Flow.instantiate ~fifo_depth:(pixels + 16) ~mode:`Behavioral build in
  let exec = live.Soc_core.Flow.exec in
  let rgb = Soc_apps.Image.synthetic_rgb ~width ~height () in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 rgb.Soc_apps.Image.rgb;
  List.iter (fun n -> Exec.start_accel exec n)
    [ "grayScale"; "computeHistogram"; "halfProbability"; "segment" ];
  Exec.start_read_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"segment" ~port:"segmentedGrayImage")
    ~addr:4096 ~len:pixels;
  Exec.start_write_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"grayScale" ~port:"imageIn")
    ~addr:0 ~len:pixels;
  Exec.run_phase exec
    ~accels:[ "grayScale"; "computeHistogram"; "halfProbability"; "segment" ];
  let out = Soc_axi.Dram.read_block (Exec.dram exec) ~addr:4096 ~len:pixels in
  check Alcotest.bool "behavioural mode bit-exact" true
    (out = golden.Soc_apps.Image.pixels)

let run_mode mode =
  let n = 32 in
  let spec = Soc_apps.Xtea.encrypt_spec in
  let blocks = n / 2 in
  let build =
    Soc_core.Flow.build spec ~kernels:[ ("xteaEnc", Soc_apps.Xtea.encrypt_kernel ~blocks) ]
  in
  let live = Soc_core.Flow.instantiate ~mode build in
  let exec = live.Soc_core.Flow.exec in
  let rng = Soc_util.Rng.create 4 in
  let pt = Array.init n (fun _ -> Soc_util.Rng.int rng 0x3FFFFFFF) in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 pt;
  Array.iteri
    (fun i kw -> Exec.set_arg exec ~accel:"xteaEnc" ~port:(Printf.sprintf "key%d" i) kw)
    [| 1; 2; 3; 4 |];
  Exec.start_accel exec "xteaEnc";
  Exec.start_read_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"xteaEnc" ~port:"ct")
    ~addr:2048 ~len:n;
  Exec.start_write_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"xteaEnc" ~port:"pt")
    ~addr:0 ~len:n;
  Exec.run_phase exec ~accels:[ "xteaEnc" ];
  (Array.to_list (Soc_axi.Dram.read_block (Exec.dram exec) ~addr:2048 ~len:n),
   Exec.elapsed_cycles exec)

let test_modes_agree_functionally () =
  let rtl_out, rtl_cycles = run_mode `Rtl in
  let beh_out, beh_cycles = run_mode `Behavioral in
  check (Alcotest.list Alcotest.int) "same ciphertext" rtl_out beh_out;
  (* The behavioural engine is the idealized pipelined upper bound. *)
  check Alcotest.bool "behavioural no slower than RTL" true (beh_cycles <= rtl_cycles)

let test_behavioral_rerun () =
  let sys = Soc_platform.System.create () in
  ignore (Soc_platform.System.add_accel_behavioral sys ~name:"MUL" Soc_apps.Filters.mul_kernel);
  let exec = Exec.create sys in
  let call a b =
    Exec.set_arg exec ~accel:"MUL" ~port:"A" a;
    Exec.set_arg exec ~accel:"MUL" ~port:"B" b;
    Exec.start_accel exec "MUL";
    Exec.wait_accel exec "MUL";
    Exec.get_arg exec ~accel:"MUL" ~port:"return_"
  in
  check Alcotest.int "first" 6 (call 2 3);
  check Alcotest.int "second" 56 (call 7 8)

let test_behavioral_backpressure () =
  (* Behavioural engine must respect a full output FIFO (blocked push). *)
  let config =
    { Soc_platform.Config.zedboard with
      Soc_platform.Config.default_fifo_depth = 4; deadlock_window = 5_000 }
  in
  let sys = Soc_platform.System.create ~config () in
  let open Soc_kernel.Ast.Build in
  let burst =
    {
      Soc_kernel.Ast.kname = "burst";
      ports = [ in_stream "i" Soc_kernel.Ty.U32; out_stream "o" Soc_kernel.Ty.U32 ];
      locals = [ ("k", Soc_kernel.Ty.U32); ("x", Soc_kernel.Ty.U32) ];
      arrays = [];
      body =
        [ pop "x" "i";
          for_ "k" ~from:(int 0) ~below:(int 64) [ push "o" (v "x" +: v "k") ] ];
    }
  in
  ignore (Soc_platform.System.add_accel_behavioral sys ~name:"burst" burst);
  let in_ch, _ = Soc_platform.System.add_mm2s sys ~dst:("burst", "i") () in
  let out_ch, _ = Soc_platform.System.add_s2mm sys ~src:("burst", "o") () in
  let exec = Exec.create sys in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 [| 100 |];
  Exec.start_accel exec "burst";
  Exec.start_read_dma exec ~channel:out_ch ~addr:64 ~len:64;
  Exec.start_write_dma exec ~channel:in_ch ~addr:0 ~len:1;
  Exec.run_phase exec ~accels:[ "burst" ];
  check (Alcotest.list Alcotest.int) "all beats through a 4-deep fifo"
    (List.init 64 (fun k -> 100 + k))
    (Array.to_list (Soc_axi.Dram.read_block (Exec.dram exec) ~addr:64 ~len:64))

(* ------------------------------------------------------------------ *)
(* VCD recorder                                                        *)
(* ------------------------------------------------------------------ *)

let test_vcd_structure () =
  let accel = Soc_hls.Engine.synthesize Soc_apps.Filters.add_kernel in
  let net = accel.Soc_hls.Engine.fsmd.Soc_hls.Fsmd.netlist in
  let sim = Soc_rtl.Sim.create net in
  let vcd = Soc_rtl.Vcd.create net sim in
  Soc_rtl.Sim.set_input sim accel.Soc_hls.Engine.fsmd.Soc_hls.Fsmd.ap_start 1;
  for _ = 1 to 8 do
    Soc_rtl.Sim.settle sim;
    Soc_rtl.Vcd.sample vcd;
    Soc_rtl.Sim.tick sim
  done;
  let text = Soc_rtl.Vcd.to_string vcd in
  check Alcotest.bool "header" true (Tstr.contains text "$enddefinitions $end");
  check Alcotest.bool "declares state reg" true (Tstr.contains text "state");
  check Alcotest.bool "time marks" true (Tstr.contains text "#0");
  check Alcotest.bool "vector values" true (Tstr.contains text "b")

let test_vcd_only_changes () =
  (* A held-constant design emits exactly one time frame. *)
  let net = Soc_rtl.Netlist.create "const" in
  let o = Soc_rtl.Netlist.output net ~name:"o" ~width:8 in
  Soc_rtl.Netlist.assign net o (Soc_rtl.Netlist.Const (7, 8));
  let sim = Soc_rtl.Sim.create net in
  let vcd = Soc_rtl.Vcd.create net sim in
  for _ = 1 to 5 do
    Soc_rtl.Sim.settle sim;
    Soc_rtl.Vcd.sample vcd;
    Soc_rtl.Sim.tick sim
  done;
  let text = Soc_rtl.Vcd.to_string vcd in
  check Alcotest.bool "one #0 frame" true (Tstr.contains text "#0");
  check Alcotest.bool "no #1 frame" false (Tstr.contains text "#1");
  check Alcotest.bool "no #4 frame" false (Tstr.contains text "#4")

let test_vcd_ids_unique () =
  let ids = List.init 300 Soc_rtl.Vcd.id_of_index in
  check Alcotest.int "300 unique ids" 300 (List.length (List.sort_uniq compare ids))

let test_vcd_binary () =
  check Alcotest.string "b101" "101" (Soc_rtl.Vcd.binary_of_int ~width:3 5);
  check Alcotest.string "leading zeros" "0001" (Soc_rtl.Vcd.binary_of_int ~width:4 1)

let suite =
  [
    ("behavioural lite accel", `Quick, test_behavioral_lite_accel);
    ("behavioural stream system (otsu)", `Quick, test_behavioral_stream_system);
    ("modes agree functionally (xtea)", `Quick, test_modes_agree_functionally);
    ("behavioural rerun", `Quick, test_behavioral_rerun);
    ("behavioural backpressure", `Quick, test_behavioral_backpressure);
    ("vcd structure", `Quick, test_vcd_structure);
    ("vcd only changes", `Quick, test_vcd_only_changes);
    ("vcd ids unique", `Quick, test_vcd_ids_unique);
    ("vcd binary rendering", `Quick, test_vcd_binary);
  ]

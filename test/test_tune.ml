(* The autotuner subsystem: k-objective Pareto dominance (qcheck against
   a brute-force oracle), seeded strategy determinism on both a synthetic
   space and the real Otsu space, warm-vs-cold farm-backed evaluation
   (strictly fewer engine invocations, byte-identical frontier JSON), the
   legacy Explore.pareto wrapper, and the streaming explore op end-to-end
   over a live daemon. *)

module Pareto = Soc_tune.Pareto
module Search = Soc_tune.Search
module Render = Soc_tune.Render
module Tuner = Soc_dse.Tuner
module Cache = Soc_farm.Cache
module Engine = Soc_hls.Engine
module Protocol = Soc_serve.Protocol
module Server = Soc_serve.Server
module Client = Soc_serve.Client

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Pareto dominance                                                    *)
(* ------------------------------------------------------------------ *)

let test_dominates_basics () =
  check Alcotest.bool "strictly better" true (Pareto.dominates [| 1.; 1. |] [| 2.; 2. |]);
  check Alcotest.bool "better on one axis" true (Pareto.dominates [| 1.; 2. |] [| 2.; 2. |]);
  check Alcotest.bool "equal never dominates" false (Pareto.dominates [| 1.; 1. |] [| 1.; 1. |]);
  check Alcotest.bool "trade-off does not dominate" false
    (Pareto.dominates [| 1.; 3. |] [| 2.; 2. |]);
  check Alcotest.bool "arity mismatch" true
    (try ignore (Pareto.dominates [| 1. |] [| 1.; 2. |]); false
     with Invalid_argument _ -> true)

(* Small coordinates on purpose: collisions and exact dominance must be
   common or the property is vacuous. *)
let vec_gen k =
  QCheck.Gen.(array_size (return k) (map float_of_int (int_range 0 5)))

let points_gen k = QCheck.Gen.(list_size (int_range 0 25) (vec_gen k))

let qcheck_front_is_nondominated_set =
  QCheck.Test.make ~name:"pareto front = exactly the non-dominated subset" ~count:300
    (QCheck.make
       QCheck.Gen.(int_range 1 4 >>= fun k -> points_gen k)
       ~print:(fun pts ->
         String.concat ";"
           (List.map
              (fun v ->
                "[" ^ String.concat "," (List.map string_of_float (Array.to_list v)) ^ "]")
              pts)))
    (fun pts ->
      let front = Pareto.front ~objectives:Fun.id pts in
      let oracle =
        List.filter (fun p -> not (List.exists (fun q -> Pareto.dominates q p) pts)) pts
      in
      front = oracle)

let qcheck_front_idempotent =
  QCheck.Test.make ~name:"pareto front is idempotent" ~count:200
    (QCheck.make (points_gen 3))
    (fun pts ->
      let front = Pareto.front ~objectives:Fun.id pts in
      Pareto.front ~objectives:Fun.id front = front)

(* ------------------------------------------------------------------ *)
(* Seeded strategies on a synthetic space                              *)
(* ------------------------------------------------------------------ *)

(* 64 integer candidates with a deterministic 2-objective trade-off:
   obj0 falls and obj1 rises with c, plus a ripple so the front is
   non-trivial. No I/O — strategy logic in isolation. *)
let synth_space : int Search.space =
  { Search.space_name = "synth";
    axes = [ ("c", List.init 64 string_of_int) ];
    universe = (fun () -> List.init 64 Fun.id);
    key = string_of_int;
    describe = string_of_int;
    start = 0;
    neighbours = (fun c -> List.filter (fun x -> x < 64) [ c + 1; c + 3 ]);
    random = (fun rng -> Soc_util.Rng.int rng 64);
    mutate = (fun rng c -> (c + 1 + Soc_util.Rng.int rng 8) mod 64) }

let synth_eval cands =
  List.map
    (fun c ->
      let o0 = float_of_int (64 - c + (7 * (c mod 3))) in
      let o1 = float_of_int (c + (5 * (c mod 4))) in
      ( c,
        Search.Feasible
          { Search.key = string_of_int c; label = string_of_int c; dsl = "";
            objectives = [| o0; o1 |]; cycles = c; usage = Soc_hls.Report.zero;
            tool_seconds = 0.0 } ))
    cands

let run_synth strategy seed = Search.run ~space:synth_space ~eval:synth_eval strategy ~seed

let frontier_keys r = List.map (fun (p : Search.point) -> p.Search.key) r.Search.frontier

let test_synth_deterministic () =
  List.iter
    (fun strategy ->
      let a = run_synth strategy 11 and b = run_synth strategy 11 in
      check (Alcotest.list Alcotest.string)
        (Search.strategy_name strategy ^ " same seed, same frontier")
        (frontier_keys a) (frontier_keys b);
      check Alcotest.int
        (Search.strategy_name strategy ^ " same evaluated count")
        a.Search.evaluated b.Search.evaluated)
    [ Search.Exhaustive; Search.Random 20; Search.Greedy;
      Search.Evolve { population = 6; generations = 3 } ]

let test_synth_frontier_nondominated () =
  let r = run_synth Search.Exhaustive 1 in
  let vecs = List.map (fun (p : Search.point) -> p.Search.objectives) r.Search.points in
  List.iter
    (fun (p : Search.point) ->
      check Alcotest.bool ("frontier point " ^ p.Search.key ^ " undominated") false
        (List.exists (fun q -> Pareto.dominates q p.Search.objectives) vecs))
    r.Search.frontier;
  (* Exhaustive saw the whole universe, so every non-frontier point is
     dominated by (or duplicates) a frontier vector. *)
  List.iter
    (fun (p : Search.point) ->
      check Alcotest.bool ("point " ^ p.Search.key ^ " covered") true
        (List.exists
           (fun (f : Search.point) ->
             f.Search.objectives = p.Search.objectives
             || Pareto.dominates f.Search.objectives p.Search.objectives)
           r.Search.frontier))
    r.Search.points

let test_exhaustive_covers_universe () =
  let r = run_synth Search.Exhaustive 1 in
  check Alcotest.int "all 64 evaluated" 64 r.Search.evaluated;
  check Alcotest.int "proposed = universe" 64 r.Search.proposed

let test_memoization_counts_distinct () =
  (* Evolve proposes with repeats; evaluated counts distinct keys only. *)
  let r = run_synth (Search.Evolve { population = 8; generations = 5 }) 3 in
  check Alcotest.bool "repeats proposed" true (r.Search.proposed > r.Search.evaluated);
  check Alcotest.bool "evaluated bounded by universe" true (r.Search.evaluated <= 64)

let test_strategy_of_string () =
  check Alcotest.bool "evolve parses" true
    (match Search.strategy_of_string "evolve" with
    | Ok (Search.Evolve _) -> true
    | _ -> false);
  check Alcotest.bool "random picks samples" true
    (Search.strategy_of_string ~samples:7 "random" = Ok (Search.Random 7));
  check Alcotest.bool "unknown rejected" true
    (match Search.strategy_of_string "anneal" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Farm-backed evaluation on the real Otsu space                       *)
(* ------------------------------------------------------------------ *)

let small_opts strategy seed =
  { Tuner.default_options with
    Tuner.strategy; seed; width = 8; height = 8; mode = `Behavioral }

let test_tuner_seeded_deterministic () =
  let cache = Cache.create () in
  let a = Tuner.run ~cache (small_opts (Search.Random 5) 21) in
  let b = Tuner.run ~cache (small_opts (Search.Random 5) 21) in
  check Alcotest.string "same seed, byte-identical frontier JSON"
    (Render.frontier_json a.Tuner.search) (Render.frontier_json b.Tuner.search);
  check Alcotest.bool "no failures" true (a.Tuner.search.Search.failures = [])

let test_warm_resweep_fewer_invocations () =
  let dir = Filename.temp_file "tune_warm" ".cache" in
  Sys.remove dir;
  let opts = small_opts (Search.Random 6) 13 in
  let cold_cache = Cache.create ~disk_dir:dir () in
  let cold = Tuner.run ~cache:cold_cache opts in
  check Alcotest.bool "cold run synthesizes" true (cold.Tuner.engine_invocations > 0);
  (* A fresh in-memory cache over the same disk dir: only the disk layer
     is warm, exactly the cross-process re-sweep scenario. *)
  let warm_cache = Cache.create ~disk_dir:dir () in
  let warm = Tuner.run ~cache:warm_cache opts in
  check Alcotest.bool "warm strictly fewer engine invocations" true
    (warm.Tuner.engine_invocations < cold.Tuner.engine_invocations);
  check Alcotest.int "warm repeats zero synthesis" 0 warm.Tuner.engine_invocations;
  check Alcotest.string "frontier JSON byte-identical warm vs cold"
    (Render.frontier_json cold.Tuner.search) (Render.frontier_json warm.Tuner.search)

let test_budget_gate_prunes_pre_hls () =
  (* A 1% Zynq-7020 fits almost nothing. The optimistic AST-level
     estimate prunes most hardware candidates before any synthesis; the
     one kernel whose estimate squeaks under (computeHistogram) is
     synthesized once per distinct HLS config and then rejected by the
     post-synthesis backstop — so the whole 192-candidate sweep costs at
     most a handful of engine runs and yields an all-software frontier. *)
  let cache = Cache.create () in
  let o =
    Tuner.run ~cache
      { (small_opts Search.Exhaustive 1) with Tuner.budget_pct = 1 }
  in
  check Alcotest.bool "synthesis bounded by estimate-gate survivors" true
    (o.Tuner.engine_invocations <= 3);
  check Alcotest.bool "hardware candidates pruned" true (o.Tuner.pruned > 0);
  check Alcotest.bool "infeasible counted" true (o.Tuner.search.Search.infeasible > 0);
  (* The all-software partitions survive and form the whole frontier. *)
  List.iter
    (fun (p : Search.point) ->
      check Alcotest.int ("frontier " ^ p.Search.key ^ " uses no fabric") 0
        p.Search.usage.Soc_hls.Report.lut)
    o.Tuner.search.Search.frontier

let test_greedy_matches_legacy_trajectory () =
  (* Tuner's greedy over the full space holds FIFO/schedule knobs at the
     legacy sweep's values, so its accepted latencies must agree with
     Explore.greedy on the same image. *)
  let o =
    Tuner.run ~cache:(Cache.create ())
      { (small_opts Search.Greedy 1) with Tuner.mode = `Rtl }
  in
  let legacy = Soc_dse.Explore.greedy ~width:8 ~height:8 () in
  let final = List.nth legacy.Soc_dse.Explore.points
      (List.length legacy.Soc_dse.Explore.points - 1) in
  let best = Option.get (Render.winner o.Tuner.search) in
  check Alcotest.int "greedy endpoint cycles match legacy" final.Soc_dse.Runner.cycles
    best.Search.cycles

(* ------------------------------------------------------------------ *)
(* The legacy 2-objective wrapper                                      *)
(* ------------------------------------------------------------------ *)

let test_explore_pareto_wrapper () =
  let r = Soc_dse.Explore.exhaustive ~width:8 ~height:8 () in
  let front = Soc_dse.Explore.pareto r.Soc_dse.Explore.points in
  let obj (p : Soc_dse.Runner.point) =
    [| float_of_int p.Soc_dse.Runner.cycles;
       float_of_int p.Soc_dse.Runner.resources.Soc_hls.Report.lut |]
  in
  check Alcotest.bool "front non-empty" true (front <> []);
  List.iter
    (fun p ->
      check Alcotest.bool "wrapper front undominated" false
        (List.exists
           (fun q -> Pareto.dominates (obj q) (obj p))
           r.Soc_dse.Explore.points))
    front;
  (* Sorted by (cycles, lut) ascending, no duplicates. *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      compare (obj a) (obj b) < 0 && sorted rest
    | _ -> true
  in
  check Alcotest.bool "canonical order" true (sorted front)

(* ------------------------------------------------------------------ *)
(* Streaming explore over a live daemon                                *)
(* ------------------------------------------------------------------ *)

let test_serve_explore_round_trip () =
  let d = Server.default_config in
  let cfg = { d with Server.workers = 1; kernels = Soc_apps.Otsu.kernels ~width:16 ~height:16 } in
  let srv = Server.start cfg in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = Client.connect ~port:(Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let updates = ref 0 in
          let req =
            Protocol.Explore
              { strategy = "random"; seed = 5; budget_pct = 100; population = 8;
                generations = 4; samples = 4; width = 8; height = 8 }
          in
          match Client.explore c ~on_update:(fun _ -> incr updates) req with
          | Protocol.Explore_r { frontier; evaluated; rounds; engine_runs; _ } ->
            check Alcotest.bool "streamed at least one update" true (!updates >= 1);
            check Alcotest.int "evaluated all samples" 4 evaluated;
            check Alcotest.bool "at least one round" true (rounds >= 1);
            check Alcotest.bool "engine ran on a cold daemon cache" true (engine_runs > 0);
            check Alcotest.bool "frontier JSON present" true
              (String.length frontier > 0 && frontier.[0] = '{');
            (* A second identical sweep hits the daemon's cache and must
               return the same frontier bytes. *)
            let updates2 = ref 0 in
            (match Client.explore c ~on_update:(fun _ -> incr updates2) req with
            | Protocol.Explore_r { frontier = frontier2; engine_runs = runs2; _ } ->
              check Alcotest.string "frontier byte-stable across cache temperature"
                frontier frontier2;
              check Alcotest.int "warm sweep repeats no synthesis" 0 runs2
            | r -> Alcotest.failf "unexpected second reply: %s"
                     Protocol.(to_string (encode_response r)))
          | r ->
            Alcotest.failf "unexpected reply: %s" Protocol.(to_string (encode_response r))))

let test_protocol_explore_codecs () =
  let req =
    Protocol.Explore
      { strategy = "evolve"; seed = 9; budget_pct = 60; population = 12;
        generations = 5; samples = 40; width = 24; height = 24 }
  in
  check Alcotest.bool "request round-trips" true
    (Protocol.decode_request (Protocol.of_string (Protocol.to_string (Protocol.encode_request req)))
     = Ok req);
  let upd =
    Protocol.Explore_update
      { round = 2; evaluated = 9; infeasible = 1; frontier_size = 4; best_us = 130.5 }
  in
  check Alcotest.bool "update round-trips" true
    (Protocol.decode_response
       (Protocol.of_string (Protocol.to_string (Protocol.encode_response upd)))
     = Ok upd);
  let fin =
    Protocol.Explore_r
      { frontier = "{\"space\": \"otsu\"}\n"; evaluated = 9; infeasible = 1; rounds = 3;
        engine_runs = 7; cache_hits = 11; wall_ms = 42.0 }
  in
  check Alcotest.bool "final round-trips" true
    (Protocol.decode_response
       (Protocol.of_string (Protocol.to_string (Protocol.encode_response fin)))
     = Ok fin)

let suite =
  [
    Alcotest.test_case "dominates basics" `Quick test_dominates_basics;
    qtest qcheck_front_is_nondominated_set;
    qtest qcheck_front_idempotent;
    Alcotest.test_case "synthetic strategies deterministic" `Quick test_synth_deterministic;
    Alcotest.test_case "synthetic frontier non-dominated" `Quick test_synth_frontier_nondominated;
    Alcotest.test_case "exhaustive covers universe" `Quick test_exhaustive_covers_universe;
    Alcotest.test_case "memoization counts distinct" `Quick test_memoization_counts_distinct;
    Alcotest.test_case "strategy_of_string" `Quick test_strategy_of_string;
    Alcotest.test_case "tuner seeded deterministic" `Quick test_tuner_seeded_deterministic;
    Alcotest.test_case "warm re-sweep fewer invocations" `Quick test_warm_resweep_fewer_invocations;
    Alcotest.test_case "budget gate prunes pre-HLS" `Quick test_budget_gate_prunes_pre_hls;
    Alcotest.test_case "greedy matches legacy trajectory" `Quick test_greedy_matches_legacy_trajectory;
    Alcotest.test_case "Explore.pareto wrapper" `Quick test_explore_pareto_wrapper;
    Alcotest.test_case "serve explore round trip" `Quick test_serve_explore_round_trip;
    Alcotest.test_case "protocol explore codecs" `Quick test_protocol_explore_codecs;
  ]

(* Tests for the application layer: images, the Otsu golden model and
   kernels (software semantics), the Fig. 4 filters, and the paper graphs. *)

open Soc_apps

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Image                                                               *)
(* ------------------------------------------------------------------ *)

let test_rgb_pack_unpack () =
  let p = Image.pack_rgb ~r:12 ~g:34 ~b:56 in
  check (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int) "roundtrip" (12, 34, 56)
    (Image.unpack_rgb p)

let test_pixel_accessors () =
  let img = Image.create ~width:4 ~height:3 in
  Image.set img ~x:2 ~y:1 200;
  check Alcotest.int "get" 200 (Image.get img ~x:2 ~y:1);
  Image.set img ~x:0 ~y:0 300;
  check Alcotest.int "masked to byte" 44 (Image.get img ~x:0 ~y:0)

let test_pgm_roundtrip () =
  let img = Image.create ~width:5 ~height:4 in
  for y = 0 to 3 do
    for x = 0 to 4 do
      Image.set img ~x ~y ((x * 13) + y)
    done
  done;
  let img' = Image.of_pgm (Image.to_pgm img) in
  check Alcotest.bool "pgm round-trip" true (Image.equal img img')

let test_pgm_rejects_garbage () =
  (match Image.of_pgm "P5 binary" with
  | exception Image.Bad_pgm _ -> ()
  | _ -> Alcotest.fail "expected Bad_pgm");
  match Image.of_pgm "P2\n2 2\n255\n1 2 3" with
  | exception Image.Bad_pgm _ -> ()
  | _ -> Alcotest.fail "expected pixel count error"

let test_pgm_comments () =
  let img = Image.of_pgm "P2\n# a comment\n2 1\n255\n7 9\n" in
  check Alcotest.int "pixel" 9 (Image.get img ~x:1 ~y:0)

let test_synthetic_deterministic () =
  let a = Image.synthetic_rgb ~seed:5 ~width:16 ~height:16 () in
  let b = Image.synthetic_rgb ~seed:5 ~width:16 ~height:16 () in
  check Alcotest.bool "same seed same image" true (a.Image.rgb = b.Image.rgb);
  let c = Image.synthetic_rgb ~seed:6 ~width:16 ~height:16 () in
  check Alcotest.bool "different seed differs" true (a.Image.rgb <> c.Image.rgb)

let test_synthetic_bimodal () =
  (* The scene must have meaningful foreground and background mass, or Otsu
     degenerates. *)
  let rgb = Image.synthetic_rgb ~width:32 ~height:32 () in
  let gray = Image.rgb_to_gray rgb in
  let bright = Array.fold_left (fun acc p -> if p > 120 then acc + 1 else acc) 0 gray.Image.pixels in
  let total = Image.size gray in
  check Alcotest.bool "foreground mass 5-60%" true
    (bright * 100 / total > 5 && bright * 100 / total < 60)

let test_histogram_totals () =
  let img = Image.create ~width:8 ~height:8 in
  let h = Image.histogram img in
  check Alcotest.int "all in bin 0" 64 h.(0);
  check Alcotest.int "256 bins" 256 (Array.length h)

(* ------------------------------------------------------------------ *)
(* Otsu golden model                                                   *)
(* ------------------------------------------------------------------ *)

let test_otsu_bimodal_threshold_separates () =
  (* Two well-separated clusters: threshold must fall between them. *)
  let hist = Array.make 256 0 in
  hist.(40) <- 500;
  hist.(200) <- 500;
  let t = Otsu.Golden.otsu_threshold hist ~total:1000 in
  check Alcotest.bool "between modes" true (t >= 40 && t < 200)

let test_otsu_uniform_image () =
  let hist = Array.make 256 0 in
  hist.(128) <- 100;
  (* single-valued image: any threshold is fine, must not crash *)
  let t = Otsu.Golden.otsu_threshold hist ~total:100 in
  check Alcotest.bool "valid range" true (t >= 0 && t <= 255)

let test_otsu_binarize () =
  let img = Image.create ~width:2 ~height:1 in
  Image.set img ~x:0 ~y:0 10;
  Image.set img ~x:1 ~y:0 200;
  let b = Otsu.Golden.binarize img ~threshold:100 in
  check Alcotest.int "below" 0 (Image.get b ~x:0 ~y:0);
  check Alcotest.int "above" 255 (Image.get b ~x:1 ~y:0)

let test_golden_pipeline_segments_scene () =
  let rgb = Image.synthetic_rgb ~width:32 ~height:32 () in
  let out, thr = Otsu.Golden.run rgb in
  check Alcotest.bool "plausible threshold" true (thr > 60 && thr < 190);
  (* Output must be binary. *)
  Array.iter
    (fun p -> if p <> 0 && p <> 255 then Alcotest.fail "non-binary output")
    out.Image.pixels

(* Property: threshold maximizes the integer between-class score over all t. *)
let prop_otsu_is_argmax =
  QCheck.Test.make ~name:"otsu threshold is the score argmax" ~count:50
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (seed, _) ->
      let rng = Soc_util.Rng.create seed in
      let hist = Array.init 256 (fun _ -> Soc_util.Rng.int rng 20) in
      let total = Array.fold_left ( + ) 0 hist in
      QCheck.assume (total > 0);
      let score t =
        let w_b = ref 0 and sum_b = ref 0 and sum_all = ref 0 in
        Array.iteri (fun i h -> sum_all := !sum_all + (i * h)) hist;
        let best_at = ref 0 in
        for i = 0 to t do
          w_b := !w_b + hist.(i);
          sum_b := !sum_b + (i * hist.(i))
        done;
        if !w_b = 0 || !w_b = total then 0
        else begin
          let w_f = total - !w_b in
          let m_b = !sum_b / !w_b and m_f = (!sum_all - !sum_b) / w_f in
          let d = m_b - m_f in
          ignore !best_at;
          !w_b * w_f / total * d * d
        end
      in
      let t_star = Otsu.Golden.otsu_threshold hist ~total in
      let best = List.fold_left max 0 (List.init 256 score) in
      score t_star = best)

(* Property: kernel (interpreter) = golden model on random histograms. *)
let prop_otsu_kernel_matches_golden =
  QCheck.Test.make ~name:"otsu kernel = golden model" ~count:30
    (QCheck.int_bound 100_000) (fun seed ->
      let rng = Soc_util.Rng.create seed in
      (* Build a histogram summing exactly to [pixels]. *)
      let pixels = 1024 in
      let hist = Array.make 256 0 in
      for _ = 1 to pixels do
        let bin = if Soc_util.Rng.bool rng then 30 + Soc_util.Rng.int rng 60 else 150 + Soc_util.Rng.int rng 80 in
        hist.(bin) <- hist.(bin) + 1
      done;
      let golden = Otsu.Golden.otsu_threshold hist ~total:pixels in
      let r =
        Soc_kernel.Interp.run_kernel
          ~streams:[ ("histogram", Array.to_list hist) ]
          (Otsu.otsu_method_kernel ~pixels)
      in
      Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "probability"
      = [ golden ])

(* Property: grayScale kernel = golden gray on random packed pixels. *)
let prop_grayscale_kernel_matches =
  QCheck.Test.make ~name:"grayScale kernel = golden" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 64) (int_bound 0xFFFFFF))
    (fun pixels ->
      let n = List.length pixels in
      let r =
        Soc_kernel.Interp.run_kernel ~streams:[ ("imageIn", pixels) ]
          (Otsu.gray_scale_kernel ~pixels:n)
      in
      let expected = List.map Otsu.Golden.gray_of_rgb pixels in
      Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "imageOutCH" = expected
      && Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "imageOutSEG"
         = expected)

(* Property: histogram kernel = Image.histogram. *)
let prop_histogram_kernel_matches =
  QCheck.Test.make ~name:"histogram kernel = golden" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 128) (int_bound 255))
    (fun pixels ->
      let n = List.length pixels in
      let r =
        Soc_kernel.Interp.run_kernel ~streams:[ ("grayScaleImage", pixels) ]
          (Otsu.histogram_kernel ~pixels:n)
      in
      let expected = Array.make 256 0 in
      List.iter (fun p -> expected.(p) <- expected.(p) + 1) pixels;
      Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "histogram"
      = Array.to_list expected)

(* Property: segment kernel = binarize. *)
let prop_segment_kernel_matches =
  QCheck.Test.make ~name:"segment kernel = golden binarize" ~count:30
    QCheck.(pair (int_bound 255) (list_of_size (QCheck.Gen.int_range 1 64) (int_bound 255)))
    (fun (thr, pixels) ->
      let n = List.length pixels in
      let r =
        Soc_kernel.Interp.run_kernel
          ~streams:[ ("grayScaleImage", pixels); ("otsuThreshold", [ thr ]) ]
          (Otsu.segment_kernel ~pixels:n)
      in
      Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "segmentedGrayImage"
      = List.map (fun p -> if p > thr then 255 else 0) pixels)

let test_kernel_size_guard () =
  match Otsu.kernels ~width:512 ~height:512 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected size guard"

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

let run_stencil kernel input =
  let r = Soc_kernel.Interp.run_kernel ~streams:[ ("in", input) ] kernel in
  Soc_kernel.Interp.Channels.drain r.Soc_kernel.Interp.channels "out"

let test_gauss_kernel_matches_golden () =
  let w = 12 and h = 9 in
  let rng = Soc_util.Rng.create 3 in
  let input = List.init (w * h) (fun _ -> Soc_util.Rng.int rng 256) in
  check (Alcotest.list Alcotest.int) "gauss"
    (Array.to_list (Filters.Golden.gauss ~width:w ~height:h (Array.of_list input)))
    (run_stencil (Filters.gauss_kernel ~width:w ~height:h) input)

let test_edge_kernel_matches_golden () =
  let w = 10 and h = 8 in
  let rng = Soc_util.Rng.create 4 in
  let input = List.init (w * h) (fun _ -> Soc_util.Rng.int rng 256) in
  check (Alcotest.list Alcotest.int) "edge"
    (Array.to_list (Filters.Golden.edge ~width:w ~height:h (Array.of_list input)))
    (run_stencil (Filters.edge_kernel ~width:w ~height:h) input)

let test_gauss_smooths () =
  (* Constant image stays constant (interior = weighted mean = value). *)
  let w = 8 and h = 8 in
  let input = List.init (w * h) (fun _ -> 100) in
  let out = run_stencil (Filters.gauss_kernel ~width:w ~height:h) input in
  List.iter (fun p -> check Alcotest.int "constant preserved" 100 p) out

let test_edge_flat_zero () =
  (* Flat image: interior responses are 0, border passes through. *)
  let w = 8 and h = 8 in
  let input = List.init (w * h) (fun _ -> 77) in
  let out = run_stencil (Filters.edge_kernel ~width:w ~height:h) input in
  List.iteri
    (fun idx p ->
      let x = idx mod w and y = idx / w in
      if x >= 2 && y >= 2 then check Alcotest.int "zero gradient" 0 p
      else check Alcotest.int "border passthrough" 77 p)
    out

let test_edge_detects_step () =
  let w = 8 and h = 8 in
  (* Vertical step edge at x=4. *)
  let input = List.init (w * h) (fun idx -> if idx mod w >= 4 then 200 else 20) in
  let out = run_stencil (Filters.edge_kernel ~width:w ~height:h) input in
  let at x y = List.nth out ((y * w) + x) in
  check Alcotest.bool "strong response on the edge" true (at 4 4 > 100);
  check Alcotest.int "flat region silent" 0 (at 7 4)

let test_add_mul_kernels () =
  let run k a b =
    let r = Soc_kernel.Interp.run_kernel ~scalars:[ ("A", a); ("B", b) ] k in
    List.assoc "return_" r.Soc_kernel.Interp.out_scalars
  in
  check Alcotest.int "add" 12 (run Filters.add_kernel 5 7);
  check Alcotest.int "mul" 35 (run Filters.mul_kernel 5 7)

(* ------------------------------------------------------------------ *)
(* Graphs                                                              *)
(* ------------------------------------------------------------------ *)

let test_table1_partitions () =
  check (Alcotest.list Alcotest.string) "arch1" [ "histogram" ]
    (Graphs.hw_functions Graphs.Arch1);
  check Alcotest.int "arch4 all four" 4 (List.length (Graphs.hw_functions Graphs.Arch4))

let test_arch_specs_validate () =
  List.iter
    (fun arch -> Soc_core.Spec.validate_exn (Graphs.arch_spec arch))
    Graphs.all_archs

let test_arch_kernels_cover_nodes () =
  List.iter
    (fun arch ->
      let spec = Graphs.arch_spec arch in
      let ks = Graphs.arch_kernels arch ~width:8 ~height:8 in
      check Alcotest.int
        (Graphs.arch_name arch ^ " kernel count")
        (List.length spec.Soc_core.Spec.nodes)
        (List.length ks))
    Graphs.all_archs

let test_listing4_is_arch4 () =
  let spec = Graphs.arch_spec Graphs.Arch4 in
  check Alcotest.string "name from listing" "otsu" spec.Soc_core.Spec.design_name

let suite =
  [
    ("rgb pack/unpack", `Quick, test_rgb_pack_unpack);
    ("pixel accessors mask", `Quick, test_pixel_accessors);
    ("pgm round-trip", `Quick, test_pgm_roundtrip);
    ("pgm rejects garbage", `Quick, test_pgm_rejects_garbage);
    ("pgm comments", `Quick, test_pgm_comments);
    ("synthetic scene deterministic", `Quick, test_synthetic_deterministic);
    ("synthetic scene bimodal", `Quick, test_synthetic_bimodal);
    ("histogram totals", `Quick, test_histogram_totals);
    ("otsu separates bimodal", `Quick, test_otsu_bimodal_threshold_separates);
    ("otsu uniform image", `Quick, test_otsu_uniform_image);
    ("binarize", `Quick, test_otsu_binarize);
    ("golden pipeline on scene", `Quick, test_golden_pipeline_segments_scene);
    ("kernel size guard", `Quick, test_kernel_size_guard);
    ("gauss kernel = golden", `Quick, test_gauss_kernel_matches_golden);
    ("edge kernel = golden", `Quick, test_edge_kernel_matches_golden);
    ("gauss preserves constant", `Quick, test_gauss_smooths);
    ("edge flat response", `Quick, test_edge_flat_zero);
    ("edge detects step", `Quick, test_edge_detects_step);
    ("add/mul kernels", `Quick, test_add_mul_kernels);
    ("table1 partitions", `Quick, test_table1_partitions);
    ("arch specs validate", `Quick, test_arch_specs_validate);
    ("arch kernels cover nodes", `Quick, test_arch_kernels_cover_nodes);
    ("listing4 parses as arch4", `Quick, test_listing4_is_arch4);
    qtest prop_otsu_is_argmax;
    qtest prop_otsu_kernel_matches_golden;
    qtest prop_grayscale_kernel_matches;
    qtest prop_histogram_kernel_matches;
    qtest prop_segment_kernel_matches;
  ]

(* The distributed serve path: protocol v2 framing hardening (typed read
   errors, structured frame_too_large), the fleet request/response
   vocabulary, deterministic net-fault plans, the remote worker daemon
   (hello negotiation, heartbeats, idempotent duplicate builds,
   cancellable injected hangs), and the coordinator (failover retries,
   all-down exhaustion, hedged stragglers) — plus the server acceptance
   criteria: fleet-dispatched manifests byte-match a direct farm build,
   two clients of one spec in flight on a remote worker cost exactly one
   dispatch, and total fleet loss degrades to a local build. *)

module Protocol = Soc_serve.Protocol
module Remote = Soc_serve.Remote
module Coordinator = Soc_serve.Coordinator
module Server = Soc_serve.Server
module Client = Soc_serve.Client
module Farm = Soc_farm.Farm
module Jobgraph = Soc_farm.Jobgraph
module Fault = Soc_fault.Fault
module Graphs = Soc_apps.Graphs
module Cengine = Soc_rtl_compile.Engine

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let w = 16
let h = 16

let arch_source arch = Soc_core.Printer.to_source (Graphs.arch_spec arch)
let kernel_library () = Soc_apps.Otsu.kernels ~width:w ~height:h

(* Reference manifest built the way the fleet builds it: the spec parsed
   from the submitted source text (spans participate in the digest). *)
let direct_manifest arch =
  let entry =
    { Jobgraph.spec = Soc_core.Parser.parse (arch_source arch);
      kernels = Graphs.arch_kernels arch ~width:w ~height:h }
  in
  Farm.manifest_json (Farm.build_batch ~jobs:1 [ entry ])

let fresh_dir prefix =
  let d = Filename.temp_file prefix ".cache" in
  Sys.remove d;
  d

let with_faults f =
  Fault.Service.reset ();
  Fault.Net.reset ();
  Cengine.clear_degraded ();
  Fun.protect
    ~finally:(fun () ->
      Fault.Service.reset ();
      Fault.Net.reset ();
      Cengine.clear_degraded ())
    f

let eventually ?(for_s = 5.0) p =
  let deadline = Unix.gettimeofday () +. for_s in
  let rec go () =
    if p () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let with_worker ?cache_dir ?(worker_id = "worker") f =
  let wk =
    Remote.start
      { Remote.default_config with
        cache_dir; kernels = kernel_library (); worker_id }
  in
  Fun.protect ~finally:(fun () -> Remote.stop wk) (fun () -> f wk)

let with_coordinator cfg f =
  let co = Coordinator.create cfg in
  Fun.protect ~finally:(fun () -> Coordinator.stop co) (fun () -> f co)

(* A port that refuses connections: bound once, then released. *)
let dead_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close fd;
  port

let quiet_beats = 600_000 (* heartbeat interval that never fires in a test *)

let coord_config ?(retries = 3) ?(retry_base_ms = 10) ?hedge_after_ms endpoints =
  { Coordinator.default_config with
    endpoints; retries; retry_base_ms; hedge_after_ms;
    heartbeat_interval_ms = quiet_beats; rpc_timeout_ms = 10_000 }

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let raw_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Protocol v2: typed read errors                                      *)
(* ------------------------------------------------------------------ *)

let test_read_errors () =
  (* Oversized: the announced length alone must fail the read, before
     any payload allocation or consumption. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 0x7fffffffl;
  ignore (Unix.write a hdr 0 4);
  (match Protocol.read_frame_checked ~max_len:1024 b with
  | Error (Protocol.Oversized { announced; limit }) ->
    check int "announced" 0x7fffffff announced;
    check int "limit" 1024 limit
  | _ -> Alcotest.fail "expected Oversized");
  Unix.close a;
  Unix.close b;
  (* Torn: header promises more bytes than ever arrive. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Bytes.set_int32_be hdr 0 64l;
  ignore (Unix.write a hdr 0 4);
  ignore (Unix.write a (Bytes.of_string "xy") 0 2);
  Unix.close a;
  (match Protocol.read_frame_checked b with
  | Error (Protocol.Torn _) -> ()
  | _ -> Alcotest.fail "expected Torn");
  Unix.close b;
  (* Clean EOF at a frame boundary is not an error. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  (match Protocol.read_frame_checked b with
  | Ok None -> ()
  | _ -> Alcotest.fail "expected Ok None on clean EOF");
  Unix.close b

let test_fleet_request_roundtrip () =
  let roundtrips r = Protocol.decode_request (Protocol.encode_request r) = Ok r in
  List.iter
    (fun r -> check bool "request survives json" true (roundtrips r))
    [ Protocol.Hello { version = 2; peer = "coordinator" };
      Protocol.Heartbeat;
      Protocol.Build
        { source = "design d {}"; key = "abc123"; deadline_ms = Some 500 };
      Protocol.Build { source = ""; key = "k"; deadline_ms = None };
      Protocol.Cancel { key = "abc123" } ]

let test_fleet_response_roundtrip () =
  let roundtrips r = Protocol.decode_response (Protocol.encode_response r) = Ok r in
  List.iter
    (fun r -> check bool "response survives json" true (roundtrips r))
    [ Protocol.Hello_r { version = 2; worker_id = "w0" };
      Protocol.Heartbeat_r { in_flight = 3; builds_done = 17 };
      Protocol.Built_r
        { key = "abc"; state = Protocol.Done; design = "d"; digest = "0xfeed";
          manifest = "{}"; wall_ms = 12.5 };
      Protocol.Built_r
        { key = "abc"; state = Protocol.Failed "cancelled"; design = "";
          digest = ""; manifest = ""; wall_ms = 0.0 };
      Protocol.Cancelled_r { key = "abc"; was_running = true };
      Protocol.Rejected
        { reason = Protocol.Frame_too_large; detail = "announced 9 bytes";
          diags = [] };
      Protocol.Rejected
        { reason = Protocol.Version_skew; detail = "peer speaks protocol 1";
          diags = [] } ]

(* ------------------------------------------------------------------ *)
(* Net fault plans                                                     *)
(* ------------------------------------------------------------------ *)

let test_net_determinism () =
  with_faults (fun () ->
      Fault.Net.arm ~seed:7 ~drop:0.5 ();
      let seq () = List.init 64 (fun _ -> Fault.Net.decide ~link:"a") in
      let s1 = seq () in
      Fault.Net.reset ();
      Fault.Net.arm ~seed:7 ~drop:0.5 ();
      let s2 = seq () in
      check bool "same seed, same verdict sequence" true (s1 = s2);
      check bool "plan actually drops" true
        (List.exists (fun d -> d = Fault.Net.Drop) s1);
      check bool "plan actually delivers" true
        (List.exists (fun d -> d = Fault.Net.Deliver) s1);
      Fault.Net.reset ();
      Fault.Net.arm ~seed:7 ~drop:1.0 ();
      check bool "drop=1 always drops" true
        (List.for_all (fun d -> d = Fault.Net.Drop) (seq ())))

let test_net_partition () =
  with_faults (fun () ->
      check bool "unpartitioned link delivers" true
        (Fault.Net.decide ~link:"wk:w0" = Fault.Net.Deliver);
      Fault.Net.partition ~link:"wk:w0";
      check bool "partitioned" true (Fault.Net.partitioned ~link:"wk:w0");
      check bool "partitioned link drops every frame" true
        (List.for_all
           (fun d -> d = Fault.Net.Drop)
           (List.init 8 (fun _ -> Fault.Net.decide ~link:"wk:w0")));
      check bool "other links unaffected" true
        (Fault.Net.decide ~link:"wk:w1" = Fault.Net.Deliver);
      check bool "drops were counted" true (Fault.Net.fault_count "drop" >= 8);
      Fault.Net.heal ~link:"wk:w0";
      check bool "healed link delivers" true
        (Fault.Net.decide ~link:"wk:w0" = Fault.Net.Deliver))

(* ------------------------------------------------------------------ *)
(* The worker daemon                                                   *)
(* ------------------------------------------------------------------ *)

let test_worker_hello () =
  with_worker ~worker_id:"w7" (fun wk ->
      (match Remote.handle wk (Protocol.Hello { version = 99; peer = "test" }) with
      | Protocol.Hello_r { version; worker_id } ->
        check int "negotiated down to ours" Protocol.protocol_version version;
        check string "worker id" "w7" worker_id
      | _ -> Alcotest.fail "expected Hello_r");
      (match Remote.handle wk (Protocol.Hello { version = 1; peer = "test" }) with
      | Protocol.Rejected { reason = Protocol.Version_skew; _ } -> ()
      | _ -> Alcotest.fail "expected Version_skew rejection");
      (match Remote.handle wk Protocol.Heartbeat with
      | Protocol.Heartbeat_r { in_flight; builds_done } ->
        check int "idle worker" 0 in_flight;
        check int "no builds yet" 0 builds_done
      | _ -> Alcotest.fail "expected Heartbeat_r");
      match Remote.handle wk Protocol.Drain with
      | Protocol.Error_r _ -> ()
      | _ -> Alcotest.fail "coordinator-only ops must be refused")

let test_worker_idempotent_duplicate () =
  with_faults (fun () ->
      with_worker (fun wk ->
          (* Hold the first build open at batch entry so the duplicate
             provably attaches to the in-flight record. *)
          Fault.Service.arm Fault.Service.Batch ~times:1 (Fault.Service.Hang 10.0);
          let source = arch_source Graphs.Arch1 in
          let build () =
            Remote.handle wk
              (Protocol.Build { source; key = "dup"; deadline_ms = None })
          in
          let r1 = ref Protocol.Pong and r2 = ref Protocol.Pong in
          let t1 = Thread.create (fun () -> r1 := build ()) () in
          check bool "first build in flight" true
            (eventually (fun () -> Remote.in_flight wk = 1));
          let t2 = Thread.create (fun () -> r2 := build ()) () in
          Thread.delay 0.15;
          Fault.Service.release_hangs ();
          Thread.join t1;
          Thread.join t2;
          (match (!r1, !r2) with
          | ( Protocol.Built_r { state = Protocol.Done; manifest = m1; _ },
              Protocol.Built_r { state = Protocol.Done; manifest = m2; _ } ) ->
            check bool "manifests non-empty" true (m1 <> "");
            check string "duplicate served the same bytes" m1 m2
          | _ -> Alcotest.fail "expected two Done replies");
          check int "one dispatch, one build" 1 (Remote.builds_done wk)))

let test_worker_cancel_interrupts_hang () =
  with_faults (fun () ->
      with_worker (fun wk ->
          Fault.Service.arm Fault.Service.Batch ~times:1 (Fault.Service.Hang 30.0);
          let source = arch_source Graphs.Arch2 in
          let r = ref Protocol.Pong in
          let t0 = Unix.gettimeofday () in
          let t =
            Thread.create
              (fun () ->
                r :=
                  Remote.handle wk
                    (Protocol.Build { source; key = "c1"; deadline_ms = None }))
              ()
          in
          check bool "build wedged in the injected hang" true
            (eventually (fun () -> Remote.in_flight wk = 1));
          Thread.delay 0.05;
          (match Remote.handle wk (Protocol.Cancel { key = "c1" }) with
          | Protocol.Cancelled_r { was_running; key } ->
            check string "echoed key" "c1" key;
            check bool "found the running build" true was_running
          | _ -> Alcotest.fail "expected Cancelled_r");
          Thread.join t;
          let elapsed = Unix.gettimeofday () -. t0 in
          (match !r with
          | Protocol.Built_r { state = Protocol.Failed msg; _ } ->
            check string "cancel verdict" "cancelled" msg
          | _ -> Alcotest.fail "expected a Failed reply");
          check bool "interrupted long before the 30s hang" true (elapsed < 10.0);
          check int "cancel landed on a live build" 1 (Remote.cancel_hits wk);
          (* A cancel for an unknown key is a clean no. *)
          match Remote.handle wk (Protocol.Cancel { key = "nope" }) with
          | Protocol.Cancelled_r { was_running = false; _ } -> ()
          | _ -> Alcotest.fail "expected was_running=false"))

let test_frame_too_large_structured () =
  (* Both daemons must answer an oversized announcement with a typed
     rejection, then hang up — never allocate or desync. *)
  let oversized_hdr = "\x7f\xff\xff\xff" in
  let expect_rejection port =
    let fd = raw_connect port in
    Fun.protect
      ~finally:(fun () -> raw_close fd)
      (fun () ->
        ignore (Unix.write fd (Bytes.of_string oversized_hdr) 0 4);
        (match Protocol.recv fd with
        | Some j -> (
          match Protocol.decode_response j with
          | Ok (Protocol.Rejected { reason = Protocol.Frame_too_large; detail; _ })
            ->
            check bool "detail names the limit" true
              (String.length detail > 0)
          | _ -> Alcotest.fail "expected Frame_too_large rejection")
        | None -> Alcotest.fail "expected a reply before hangup");
        match Protocol.recv fd with
        | None -> ()
        | Some _ -> Alcotest.fail "session must close after the rejection")
  in
  with_worker (fun wk -> expect_rejection (Remote.port wk));
  let srv = Server.start { Server.default_config with kernels = [] } in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () -> expect_rejection (Server.port srv))

(* ------------------------------------------------------------------ *)
(* The coordinator                                                     *)
(* ------------------------------------------------------------------ *)

let test_coordinator_failover () =
  with_faults (fun () ->
      let dir = fresh_dir "fleet-failover" in
      with_worker ~cache_dir:dir (fun wk ->
          let dead = dead_port () in
          let eps = [ ("127.0.0.1", dead); ("127.0.0.1", Remote.port wk) ] in
          with_coordinator (coord_config ~retries:4 eps) (fun co ->
              let source = arch_source Graphs.Arch1 in
              (* Several keys: rotation spreads first attempts over both
                 endpoints, so some dispatches must fail over from the
                 dead worker and still come back Built. *)
              for i = 0 to 7 do
                match
                  Coordinator.build co ~source ~key:(Printf.sprintf "fo%d" i) ()
                with
                | Ok (Coordinator.Built b) ->
                  check bool "manifest served" true (b.Coordinator.manifest <> "")
                | Ok (Coordinator.Build_failed m) ->
                  Alcotest.fail ("build failed: " ^ m)
                | Error e -> Alcotest.fail ("fleet exhausted: " ^ e)
              done;
              let s = Coordinator.stats co in
              check bool "dispatches counted" true (s.Coordinator.dispatches >= 8);
              check bool "dead endpoint forced retries" true
                (s.Coordinator.retries >= 1))))

let test_coordinator_all_down () =
  with_faults (fun () ->
      let eps =
        [ ("127.0.0.1", dead_port ()); ("127.0.0.1", dead_port ()) ]
      in
      with_coordinator (coord_config ~retries:1 eps) (fun co ->
          match Coordinator.build co ~source:"design d {}" ~key:"k" () with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "a dead fleet cannot build"))

let test_coordinator_hedge () =
  with_faults (fun () ->
      let dir = fresh_dir "fleet-hedge" in
      with_worker ~cache_dir:dir ~worker_id:"w0" (fun w0 ->
          with_worker ~cache_dir:dir ~worker_id:"w1" (fun w1 ->
              let eps =
                [ ("127.0.0.1", Remote.port w0); ("127.0.0.1", Remote.port w1) ]
              in
              with_coordinator
                (coord_config ~hedge_after_ms:100.0 eps)
                (fun co ->
                  (* The first dispatch wedges at batch entry; the hedge
                     races the other worker past the 100 ms threshold and
                     must win long before the 20 s hang expires. *)
                  Fault.Service.arm Fault.Service.Batch ~times:1
                    (Fault.Service.Hang 20.0);
                  let t0 = Unix.gettimeofday () in
                  (match
                     Coordinator.build co ~source:(arch_source Graphs.Arch3)
                       ~key:"h1" ()
                   with
                  | Ok (Coordinator.Built b) ->
                    check bool "hedge won a manifest" true
                      (b.Coordinator.manifest <> "")
                  | Ok (Coordinator.Build_failed m) ->
                    Alcotest.fail ("build failed: " ^ m)
                  | Error e -> Alcotest.fail ("fleet exhausted: " ^ e));
                  check bool "won before the hang expired" true
                    (Unix.gettimeofday () -. t0 < 15.0);
                  let s = Coordinator.stats co in
                  check bool "a hedge was launched" true
                    (s.Coordinator.hedges >= 1);
                  check bool "the loser was cancelled" true
                    (eventually (fun () ->
                         (Coordinator.stats co).Coordinator.cancels >= 1
                         || Remote.cancel_hits w0 + Remote.cancel_hits w1 >= 1));
                  Fault.Service.release_hangs ()))))

(* ------------------------------------------------------------------ *)
(* The server in fleet mode                                            *)
(* ------------------------------------------------------------------ *)

let with_fleet_server ?(fleet_rpc_timeout_ms = 10_000) fleet f =
  let srv =
    Server.start
      { Server.default_config with
        kernels = kernel_library (); fleet; fleet_rpc_timeout_ms }
  in
  let client = Client.connect ~port:(Server.port srv) () in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Server.stop srv)
    (fun () -> f srv client)

let test_server_fleet_parity () =
  with_faults (fun () ->
      let dir = fresh_dir "fleet-parity" in
      with_worker ~cache_dir:dir (fun wk ->
          with_fleet_server
            [ ("127.0.0.1", Remote.port wk) ]
            (fun srv client ->
              match Client.submit_and_wait client (arch_source Graphs.Arch1) with
              | ( Protocol.Accepted _,
                  Some
                    (Protocol.Result_r
                       { state = Protocol.Done; manifest; digest; _ }) ) ->
                check bool "digest present" true (digest <> "");
                check string "remote manifest byte-matches a direct farm build"
                  (direct_manifest Graphs.Arch1) manifest;
                let s = Server.stats srv in
                check int "one remote dispatch" 1 s.Protocol.remote_dispatches;
                check int "fleet size" 1 s.Protocol.fleet_workers;
                check int "no local fallback" 0 s.Protocol.remote_fallbacks;
                check int "the worker built it" 1 (Remote.builds_done wk)
              | _ -> Alcotest.fail "expected a Done result")))

let test_server_fleet_coalesce () =
  with_faults (fun () ->
      let dir = fresh_dir "fleet-coalesce" in
      with_worker ~cache_dir:dir (fun wk ->
          with_fleet_server
            [ ("127.0.0.1", Remote.port wk) ]
            (fun srv client ->
              (* Wedge the remote build so the second client provably
                 arrives while the first is in flight. *)
              Fault.Service.arm Fault.Service.Batch ~times:1
                (Fault.Service.Hang 20.0);
              let source = arch_source Graphs.Arch4 in
              let id1 =
                match Client.submit client source with
                | Protocol.Accepted { id; coalesced; _ } ->
                  check bool "first submit runs" false coalesced;
                  id
                | _ -> Alcotest.fail "expected Accepted"
              in
              check bool "dispatched to the worker" true
                (eventually (fun () -> Remote.in_flight wk = 1));
              let id2 =
                match Client.submit client source with
                | Protocol.Accepted { id; coalesced; _ } ->
                  check bool "second submit coalesces" true coalesced;
                  id
                | _ -> Alcotest.fail "expected Accepted"
              in
              Fault.Service.release_hangs ();
              let manifest_of id =
                match Client.result client id with
                | Protocol.Result_r { state = Protocol.Done; manifest; _ } ->
                  manifest
                | _ -> Alcotest.fail "expected Done"
              in
              let m1 = manifest_of id1 in
              let m2 = manifest_of id2 in
              check bool "manifest non-empty" true (m1 <> "");
              check string "both clients got identical bytes" m1 m2;
              let s = Server.stats srv in
              check int "two submissions" 2 s.Protocol.submitted;
              check int "one coalesced" 1 s.Protocol.coalesced;
              check int "exactly one remote dispatch" 1
                s.Protocol.remote_dispatches;
              check int "the worker built once" 1 (Remote.builds_done wk))))

let test_server_fleet_fallback () =
  with_faults (fun () ->
      with_fleet_server ~fleet_rpc_timeout_ms:2_000
        [ ("127.0.0.1", dead_port ()) ]
        (fun srv client ->
          match Client.submit_and_wait client (arch_source Graphs.Arch2) with
          | ( Protocol.Accepted _,
              Some (Protocol.Result_r { state = Protocol.Done; manifest; _ }) )
            ->
            check string "local fallback still byte-matches"
              (direct_manifest Graphs.Arch2) manifest;
            let s = Server.stats srv in
            check bool "fleet exhaustion was counted" true
              (s.Protocol.remote_fallbacks >= 1)
          | _ -> Alcotest.fail "expected a Done result via local fallback"))

let suite =
  [
    Alcotest.test_case "framing: typed read errors" `Quick test_read_errors;
    Alcotest.test_case "protocol: fleet requests roundtrip" `Quick
      test_fleet_request_roundtrip;
    Alcotest.test_case "protocol: fleet responses roundtrip" `Quick
      test_fleet_response_roundtrip;
    Alcotest.test_case "net: seeded plans are deterministic" `Quick
      test_net_determinism;
    Alcotest.test_case "net: one-way partition drops a link" `Quick
      test_net_partition;
    Alcotest.test_case "worker: hello negotiation + heartbeat" `Quick
      test_worker_hello;
    Alcotest.test_case "worker: duplicate build attaches, builds once" `Quick
      test_worker_idempotent_duplicate;
    Alcotest.test_case "worker: cancel interrupts an injected hang" `Quick
      test_worker_cancel_interrupts_hang;
    Alcotest.test_case "wire: oversized frame gets a structured rejection" `Quick
      test_frame_too_large_structured;
    Alcotest.test_case "coordinator: retries fail over a dead worker" `Quick
      test_coordinator_failover;
    Alcotest.test_case "coordinator: all workers down is an error" `Quick
      test_coordinator_all_down;
    Alcotest.test_case "coordinator: stragglers are hedged, losers cancelled"
      `Quick test_coordinator_hedge;
    Alcotest.test_case "server: fleet manifest byte-matches direct farm" `Quick
      test_server_fleet_parity;
    Alcotest.test_case "server: coalescing spans the remote path" `Quick
      test_server_fleet_coalesce;
    Alcotest.test_case "server: total fleet loss degrades to local" `Quick
      test_server_fleet_fallback;
  ]

(* Tests for the hierarchical task graph model (Fig. 1 semantics). *)

open Soc_htg.Htg

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let ok_or_fail = function
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " (List.map error_to_string es))

let simple_chain () =
  make ~name:"chain"
    ~nodes:[ task "a"; task "b"; task "c" ]
    ~edges:[ ("a", "b"); ("b", "c") ]

let test_validate_ok () = ok_or_fail (validate (simple_chain ()))

let test_fig1_validates () = ok_or_fail (validate Soc_apps.Graphs.fig1_htg)

let test_fig8_validates () = ok_or_fail (validate Soc_apps.Graphs.fig8_htg)

let test_duplicate_node () =
  let g = make ~name:"dup" ~nodes:[ task "a"; task "a" ] ~edges:[] in
  match validate g with
  | Error [ Duplicate_node "a" ] -> ()
  | _ -> Alcotest.fail "expected duplicate error"

let test_unknown_endpoint () =
  let g = make ~name:"u" ~nodes:[ task "a" ] ~edges:[ ("a", "zz") ] in
  match validate g with
  | Error errs ->
    check Alcotest.bool "mentions zz" true
      (List.exists (function Unknown_endpoint "zz" -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected error"

let test_cycle_detected () =
  let g =
    make ~name:"cyc" ~nodes:[ task "a"; task "b" ] ~edges:[ ("a", "b"); ("b", "a") ]
  in
  match validate g with
  | Error errs ->
    check Alcotest.bool "cycle" true
      (List.exists (function Cycle _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected cycle"

let test_self_loop_is_cycle () =
  let g = make ~name:"self" ~nodes:[ task "a" ] ~edges:[ ("a", "a") ] in
  match validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "self loop must be rejected"

let test_topo_order_respects_edges () =
  let g = Soc_apps.Graphs.fig8_htg in
  let order = topological_sort g in
  let pos n =
    match List.find_index (( = ) n) order with Some i -> i | None -> -1
  in
  List.iter
    (fun (e : edge) ->
      if pos e.src >= pos e.dst then
        Alcotest.fail (Printf.sprintf "%s not before %s" e.src e.dst))
    g.edges

let test_sources_sinks () =
  let g = Soc_apps.Graphs.fig8_htg in
  check (Alcotest.list Alcotest.string) "sources" [ "readImage" ]
    (List.map (fun n -> n.name) (sources g));
  check (Alcotest.list Alcotest.string) "sinks" [ "writeImage" ]
    (List.map (fun n -> n.name) (sinks g))

let test_preds_succs () =
  let g = Soc_apps.Graphs.fig8_htg in
  check
    (Alcotest.slist Alcotest.string compare)
    "binarization preds" [ "grayScale"; "otsuMethod" ]
    (predecessors g "binarization");
  check (Alcotest.list Alcotest.string) "grayScale succs" [ "histogram"; "binarization" ]
    (successors g "grayScale")

let test_hw_sw_split () =
  let g = Soc_apps.Graphs.fig8_htg in
  check Alcotest.int "hw count" 4 (List.length (hw_nodes g));
  check Alcotest.int "sw count" 2 (List.length (sw_nodes g))

let test_remap () =
  let g = Soc_apps.Graphs.fig8_htg in
  let g' = remap g ~name:"grayScale" ~mapping:Sw in
  check Alcotest.int "hw count after remap" 3 (List.length (hw_nodes g'));
  (* original unchanged *)
  check Alcotest.int "original untouched" 4 (List.length (hw_nodes g))

let test_partition_signature () =
  let g = Soc_apps.Graphs.fig8_htg in
  check Alcotest.string "signature" "SHHHHS" (partition_signature g)

let test_phase_duplicate_actor () =
  let df =
    { actors = [ actor "x" ~outputs:[ ("o", 1) ]; actor "x" ~inputs:[ ("i", 1) ] ]; links = [] }
  in
  let g = make ~name:"p" ~nodes:[ phase "ph" df ] ~edges:[] in
  match validate g with
  | Error errs ->
    check Alcotest.bool "dup actor" true
      (List.exists (function Duplicate_actor _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected duplicate actor"

let test_phase_unknown_port () =
  let df =
    {
      actors = [ actor "a" ~outputs:[ ("o", 1) ]; actor "b" ~inputs:[ ("i", 1) ] ];
      links = [ link ("a", "nope") ("b", "i") ];
    }
  in
  let g = make ~name:"p" ~nodes:[ phase "ph" df ] ~edges:[] in
  match validate g with
  | Error errs ->
    check Alcotest.bool "unknown port" true
      (List.exists (function Unknown_actor_port _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected unknown port"

let test_phase_port_reuse () =
  let df =
    {
      actors =
        [ actor "a" ~outputs:[ ("o", 1) ]; actor "b" ~inputs:[ ("i", 1) ];
          actor "c" ~inputs:[ ("i", 1) ] ];
      links = [ link ("a", "o") ("b", "i"); link ("a", "o") ("c", "i") ];
    }
  in
  let g = make ~name:"p" ~nodes:[ phase "ph" df ] ~edges:[] in
  match validate g with
  | Error errs ->
    check Alcotest.bool "port reuse" true
      (List.exists (function Stream_port_reused _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected stream port reuse"

let test_phase_cycle () =
  let df =
    {
      actors =
        [ actor "a" ~inputs:[ ("i", 1) ] ~outputs:[ ("o", 1) ];
          actor "b" ~inputs:[ ("i", 1) ] ~outputs:[ ("o", 1) ] ];
      links = [ link ("a", "o") ("b", "i"); link ("b", "o") ("a", "i") ];
    }
  in
  let g = make ~name:"p" ~nodes:[ phase "ph" df ] ~edges:[] in
  match validate g with
  | Error errs ->
    check Alcotest.bool "dataflow cycle" true
      (List.exists (function Dataflow_cycle _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected dataflow cycle"

let test_dataflow_boundary () =
  let df =
    match Soc_apps.Graphs.fig1_htg.nodes |> List.find (fun n -> n.name = "IMAGE") with
    | { kind = Phase df; _ } -> df
    | _ -> Alcotest.fail "IMAGE phase missing"
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "phase inputs" [ ("GAUSS", "in") ] (dataflow_inputs df);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "phase outputs" [ ("EDGE", "out") ] (dataflow_outputs df)

let test_to_dot () =
  let s = to_dot Soc_apps.Graphs.fig1_htg in
  check Alcotest.bool "has cluster for phase" true (Tstr.contains s "cluster_IMAGE");
  check Alcotest.bool "has N1" true (Tstr.contains s "N1")

(* Property: random DAGs (edges only forward) always validate and the
   topological sort is consistent. *)
let dag_gen =
  QCheck.Gen.(
    let* n = int_range 1 12 in
    let names = List.init n (fun i -> Printf.sprintf "n%d" i) in
    let* edges =
      let pairs =
        List.concat_map
          (fun i -> List.filter_map (fun j -> if i < j then Some (i, j) else None)
            (List.init n Fun.id))
          (List.init n Fun.id)
      in
      let* keep = flatten_l (List.map (fun _ -> bool) pairs) in
      return
        (List.filter_map
           (fun ((i, j), k) ->
             if k then Some (Printf.sprintf "n%d" i, Printf.sprintf "n%d" j) else None)
           (List.combine pairs keep))
    in
    return (make ~name:"rand" ~nodes:(List.map (fun n -> task n) names) ~edges))

let prop_random_dag_validates =
  QCheck.Test.make ~name:"random forward DAGs validate" ~count:100
    (QCheck.make dag_gen) (fun g -> validate g = Ok ())

let prop_topo_sort_complete =
  QCheck.Test.make ~name:"topological sort covers all nodes" ~count:100
    (QCheck.make dag_gen) (fun g ->
      List.sort compare (topological_sort g) = List.sort compare (node_names g))

let suite =
  [
    ("simple chain validates", `Quick, test_validate_ok);
    ("fig1 HTG validates", `Quick, test_fig1_validates);
    ("fig8 HTG validates", `Quick, test_fig8_validates);
    ("duplicate node rejected", `Quick, test_duplicate_node);
    ("unknown endpoint rejected", `Quick, test_unknown_endpoint);
    ("cycle detected", `Quick, test_cycle_detected);
    ("self loop rejected", `Quick, test_self_loop_is_cycle);
    ("topo sort respects edges", `Quick, test_topo_order_respects_edges);
    ("sources and sinks", `Quick, test_sources_sinks);
    ("predecessors/successors", `Quick, test_preds_succs);
    ("hw/sw partition query", `Quick, test_hw_sw_split);
    ("remap is functional", `Quick, test_remap);
    ("partition signature", `Quick, test_partition_signature);
    ("phase duplicate actor", `Quick, test_phase_duplicate_actor);
    ("phase unknown port", `Quick, test_phase_unknown_port);
    ("phase stream port reuse", `Quick, test_phase_port_reuse);
    ("phase dataflow cycle", `Quick, test_phase_cycle);
    ("phase boundary ports", `Quick, test_dataflow_boundary);
    ("dot rendering", `Quick, test_to_dot);
    qtest prop_random_dag_validates;
    qtest prop_topo_sort_complete;
  ]

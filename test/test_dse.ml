(* Tests for the DSE extension: partition model, generated specs, the
   generic host runner, and the exploration strategies. *)

module P = Soc_dse.Partition

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Partition model                                                     *)
(* ------------------------------------------------------------------ *)

let test_enumerate_covers_space () =
  let all = P.enumerate () in
  check Alcotest.int "16 partitions" 16 (List.length all);
  check Alcotest.int "16 distinct signatures" 16
    (List.length (List.sort_uniq compare (List.map P.signature all)))

let test_signature_roundtrip () =
  List.iter
    (fun p -> check Alcotest.bool (P.signature p) true (P.of_signature (P.signature p) = p))
    (P.enumerate ())

let test_paper_archs_as_partitions () =
  check Alcotest.string "arch1" "SHSS" (P.signature P.arch1);
  check Alcotest.string "arch2" "SSHS" (P.signature P.arch2);
  check Alcotest.string "arch3" "SHHS" (P.signature P.arch3);
  check Alcotest.string "arch4" "HHHH" (P.signature P.arch4)

let test_specs_validate () =
  List.iter
    (fun p ->
      if not (P.is_all_sw p) then Soc_core.Spec.validate_exn (P.spec_of p))
    (P.enumerate ())

let test_arch_partition_specs_match_paper_archs () =
  (* The partition generator and the hand-written Table I specs agree on
     node sets and 'soc crossings. *)
  let crossing spec =
    ( List.length (Soc_core.Spec.soc_to_node_links spec),
      List.length (Soc_core.Spec.node_to_soc_links spec),
      List.length (Soc_core.Spec.internal_links spec) )
  in
  List.iter
    (fun (partition, arch) ->
      let a = P.spec_of partition in
      let b = Soc_apps.Graphs.arch_spec arch in
      check Alcotest.int
        (P.signature partition ^ " node count")
        (List.length b.Soc_core.Spec.nodes)
        (List.length a.Soc_core.Spec.nodes);
      check
        (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
        (P.signature partition ^ " link structure")
        (crossing b) (crossing a))
    [ (P.arch1, Soc_apps.Graphs.Arch1); (P.arch2, Soc_apps.Graphs.Arch2);
      (P.arch3, Soc_apps.Graphs.Arch3); (P.arch4, Soc_apps.Graphs.Arch4) ]

let test_direct_link_rule () =
  (* gray->seg is direct only when the whole pipeline is HW. *)
  let internal p = Soc_core.Spec.internal_links (P.spec_of p) in
  check Alcotest.int "full partition: 4 internal links" 4 (List.length (internal P.arch4));
  let gray_seg = { P.all_sw with P.gray = true; seg = true } in
  check Alcotest.int "gray+seg only: no internal links" 0 (List.length (internal gray_seg))

let test_hw_runs_grouping () =
  let runs p = List.map (List.map P.stage_name) (Soc_dse.Runner.hw_runs p) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "HHSS" [ [ "grayScale"; "histogram" ] ]
    (runs (P.of_signature "HHSS"));
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "HSSH"
    [ [ "grayScale" ]; [ "binarization" ] ]
    (runs (P.of_signature "HSSH"));
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "SSSS" [] (runs P.all_sw)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_all_sw_point () =
  let pt = Soc_dse.Runner.evaluate ~width:16 ~height:16 P.all_sw in
  check Alcotest.int "no fabric" 0 pt.Soc_dse.Runner.resources.Soc_hls.Report.lut;
  check Alcotest.bool "time charged" true (pt.Soc_dse.Runner.cycles > 0)

let test_every_partition_is_bit_exact () =
  (* Runner.evaluate raises Wrong_output internally when the image differs
     from the golden model, so completing the sweep is itself the check. *)
  let cache = Soc_farm.Cache.create () in
  let hls = Soc_farm.Cache.hls_engine cache in
  List.iter
    (fun p -> ignore (Soc_dse.Runner.evaluate ~width:12 ~height:12 ~hls p))
    (P.enumerate ())

let test_behavioral_mode_bit_exact () =
  (* The fast sweep mode produces identical images (functional check is
     internal to evaluate) and never slower-than-RTL timing. *)
  List.iter
    (fun sig_ ->
      let p = P.of_signature sig_ in
      let rtl = Soc_dse.Runner.evaluate ~width:12 ~height:12 ~mode:`Rtl p in
      let beh = Soc_dse.Runner.evaluate ~width:12 ~height:12 ~mode:`Behavioral p in
      check Alcotest.bool (sig_ ^ " same image") true
        (Soc_apps.Image.equal rtl.Soc_dse.Runner.output beh.Soc_dse.Runner.output);
      check Alcotest.bool (sig_ ^ " behavioral <= rtl cycles") true
        (beh.Soc_dse.Runner.cycles <= rtl.Soc_dse.Runner.cycles))
    [ "HHHH"; "SHHS" ]

let test_mixed_partition_threshold () =
  (* otsu in HW, seg in SW: the threshold must land in DRAM. *)
  let pt =
    Soc_dse.Runner.evaluate ~width:16 ~height:16 (P.of_signature "SSHS")
  in
  let _, golden_thr = Soc_apps.Otsu_runner.golden ~width:16 ~height:16 () in
  check Alcotest.int "threshold through DMA" golden_thr pt.Soc_dse.Runner.threshold

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let sweep =
  lazy (Soc_dse.Explore.exhaustive ~width:16 ~height:16 ())

let test_exhaustive_counts () =
  let r = Lazy.force sweep in
  check Alcotest.int "16 evaluations" 16 r.Soc_dse.Explore.evaluations

let test_pareto_properties () =
  let r = Lazy.force sweep in
  let front = Soc_dse.Explore.pareto r.Soc_dse.Explore.points in
  check Alcotest.bool "front non-empty" true (front <> []);
  (* No front point dominates another front point. *)
  List.iter
    (fun (a : Soc_dse.Runner.point) ->
      List.iter
        (fun (b : Soc_dse.Runner.point) ->
          if a != b then
            let dominates =
              a.Soc_dse.Runner.cycles <= b.Soc_dse.Runner.cycles
              && a.Soc_dse.Runner.resources.Soc_hls.Report.lut
                 <= b.Soc_dse.Runner.resources.Soc_hls.Report.lut
              && (a.Soc_dse.Runner.cycles < b.Soc_dse.Runner.cycles
                 || a.Soc_dse.Runner.resources.Soc_hls.Report.lut
                    < b.Soc_dse.Runner.resources.Soc_hls.Report.lut)
            in
            if dominates then Alcotest.fail "front contains dominated point")
        front)
    front;
  (* Every non-front point is dominated by some front point. *)
  List.iter
    (fun (p : Soc_dse.Runner.point) ->
      if not (List.exists (fun (q : Soc_dse.Runner.point) -> q == p) front) then
        let dominated =
          List.exists
            (fun (q : Soc_dse.Runner.point) ->
              q.Soc_dse.Runner.cycles <= p.Soc_dse.Runner.cycles
              && q.Soc_dse.Runner.resources.Soc_hls.Report.lut
                 <= p.Soc_dse.Runner.resources.Soc_hls.Report.lut)
            front
        in
        check Alcotest.bool "dominated by front" true dominated)
    r.Soc_dse.Explore.points;
  (* The all-SW point (0 LUT) is always on the front. *)
  check Alcotest.bool "SW on front" true
    (List.exists
       (fun (q : Soc_dse.Runner.point) -> P.is_all_sw q.Soc_dse.Runner.partition)
       front)

let test_greedy_descends () =
  let g = Soc_dse.Explore.greedy ~width:16 ~height:16 () in
  let cycles = List.map (fun (p : Soc_dse.Runner.point) -> p.Soc_dse.Runner.cycles) g.Soc_dse.Explore.points in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check Alcotest.bool "strictly improving trajectory" true (decreasing cycles);
  check Alcotest.bool "starts all-SW" true
    (P.is_all_sw (List.hd g.Soc_dse.Explore.points).Soc_dse.Runner.partition);
  check Alcotest.bool "fewer evals than exhaustive would need at scale" true
    (g.Soc_dse.Explore.evaluations <= 16)

let test_greedy_endpoint_not_dominated () =
  let r = Lazy.force sweep in
  let g = Soc_dse.Explore.greedy ~width:16 ~height:16 () in
  let last = List.nth g.Soc_dse.Explore.points (List.length g.Soc_dse.Explore.points - 1) in
  (* No exhaustive point strictly beats the greedy endpoint on latency. *)
  let best_cycles =
    List.fold_left
      (fun acc (p : Soc_dse.Runner.point) -> min acc p.Soc_dse.Runner.cycles)
      max_int r.Soc_dse.Explore.points
  in
  check Alcotest.bool "greedy reaches within 25% of the best latency" true
    (float_of_int last.Soc_dse.Runner.cycles <= 1.25 *. float_of_int best_cycles)

(* Property: spec_of never produces a spec whose validation fails, for any
   random signature. *)
let prop_random_partition_specs =
  QCheck.Test.make ~name:"partition specs validate" ~count:50
    (QCheck.make
       (QCheck.Gen.oneofl (List.filter (fun p -> not (P.is_all_sw p)) (P.enumerate ()))))
    (fun p -> Soc_core.Spec.validate (P.spec_of p) = Ok ())

let suite =
  [
    ("enumerate covers the space", `Quick, test_enumerate_covers_space);
    ("signature round-trip", `Quick, test_signature_roundtrip);
    ("paper archs as partitions", `Quick, test_paper_archs_as_partitions);
    ("all partition specs validate", `Quick, test_specs_validate);
    ("partition specs match paper archs", `Quick, test_arch_partition_specs_match_paper_archs);
    ("direct-link rule", `Quick, test_direct_link_rule);
    ("hw run grouping", `Quick, test_hw_runs_grouping);
    ("all-software point", `Quick, test_all_sw_point);
    ("every partition bit-exact", `Slow, test_every_partition_is_bit_exact);
    ("behavioral DSE mode", `Quick, test_behavioral_mode_bit_exact);
    ("mixed partition threshold", `Quick, test_mixed_partition_threshold);
    ("exhaustive evaluation count", `Quick, test_exhaustive_counts);
    ("pareto front properties", `Quick, test_pareto_properties);
    ("greedy trajectory", `Quick, test_greedy_descends);
    ("greedy endpoint quality", `Quick, test_greedy_endpoint_not_dominated);
    qtest prop_random_partition_specs;
  ]

(* Tests for the HLS engine: scheduling legality, binding, FSMD
   correctness (differential against the reference interpreter, including
   randomly generated kernels), resource reporting and stall safety. *)

open Soc_kernel
open Soc_kernel.Ast.Build
module Sched = Soc_hls.Schedule

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let kernel ?(name = "k") ?(ports = []) ?(locals = []) ?(arrays = []) body =
  { Ast.kname = name; ports; locals; arrays; body }

(* Run both the interpreter and the synthesized RTL; compare scalars and
   streams. *)
let differential ?(scalars = []) ?(streams = []) ?config k =
  let ri = Interp.run_kernel ~scalars ~streams k in
  let accel = Soc_hls.Engine.synthesize ?config k in
  let rt = Soc_hls.Testbench.run ~scalars ~streams accel.Soc_hls.Engine.fsmd in
  List.iter
    (fun (port, value) ->
      check Alcotest.int ("scalar " ^ port) value (List.assoc port rt.Soc_hls.Testbench.out_scalars))
    ri.Interp.out_scalars;
  List.iter
    (fun p ->
      match p with
      | Ast.Stream { pname; dir = Ast.Out; _ } ->
        check (Alcotest.list Alcotest.int) ("stream " ^ pname)
          (Interp.Channels.drain ri.Interp.channels pname)
          (List.assoc pname rt.Soc_hls.Testbench.out_streams)
      | _ -> ())
    k.Ast.ports;
  rt

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let sched_of ?strategy ?resources k = Sched.of_cfg ?strategy ?resources (Cfg.of_kernel k)

let big_expression_kernel =
  kernel
    ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
    [
      set "r"
        ((v "a" *: v "a") +: (v "a" *: int 3) +: (v "a" *: int 5) +: (v "a" *: int 7)
        +: (v "a" *: int 11));
    ]

let test_asap_legal () =
  let s = sched_of ~strategy:Sched.Asap big_expression_kernel in
  (* ASAP ignores resources: only dependences must hold. *)
  let violations =
    List.filter
      (function Sched.Dependence _ -> true | Sched.Over_capacity _ -> false)
      (Sched.verify ~resources:Sched.unlimited s)
  in
  check Alcotest.int "no dependence violations" 0 (List.length violations)

let test_list_schedule_legal () =
  let s = sched_of big_expression_kernel in
  check Alcotest.int "fully legal" 0 (List.length (Sched.verify s))

let test_resource_constraint_lengthens () =
  let tight = { Sched.alus_per_op = 1; multipliers = 1; dividers = 1 } in
  let loose = Sched.unlimited in
  let st = sched_of ~resources:tight big_expression_kernel in
  let sl = sched_of ~strategy:Sched.Asap ~resources:loose big_expression_kernel in
  let len s = Array.fold_left (fun acc (b : Sched.block_schedule) -> acc + b.Sched.nsteps) 0 s.Sched.blocks in
  check Alcotest.bool "tight >= loose" true (len st >= len sl)

let test_tight_resources_still_legal () =
  let tight = { Sched.alus_per_op = 1; multipliers = 1; dividers = 1 } in
  let s = sched_of ~resources:tight big_expression_kernel in
  check Alcotest.int "legal under capacity 1" 0
    (List.length (Sched.verify ~resources:tight s))

let test_stream_ops_serialized () =
  let k =
    kernel
      ~ports:[ in_stream "a" Ty.U32; in_stream "b" Ty.U32; out_stream "o" Ty.U32 ]
      ~locals:[ ("x", Ty.U32); ("y", Ty.U32) ]
      [ pop "x" "a"; pop "y" "b"; push "o" (v "x" +: v "y") ]
  in
  let s = sched_of k in
  let b0 = s.Sched.blocks.(0) in
  let stream_steps =
    List.filteri
      (fun i _ ->
        match List.nth s.Sched.cfg.Cfg.blocks.(0).Cfg.instrs i with
        | Cfg.Pop _ | Cfg.Push _ -> true
        | _ -> false)
      (Array.to_list b0.Sched.csteps)
  in
  let sorted = List.sort_uniq compare stream_steps in
  check Alcotest.int "each stream op has its own cstep" (List.length stream_steps)
    (List.length sorted)

(* Property: list scheduling is legal on random DFGs derived from random
   straight-line code. *)
let straightline_gen =
  QCheck.Gen.(
    let* n = int_range 1 25 in
    let var i = Printf.sprintf "v%d" (i mod 4) in
    let* ops =
      flatten_l
        (List.init n (fun i ->
             let* kind = int_bound 5 in
             let* a = int_bound 3 in
             let* b = int_bound 3 in
             let dst = var i in
             return
               (match kind with
               | 0 -> set dst (v (var a) +: v (var b))
               | 1 -> set dst (v (var a) *: v (var b))
               | 2 -> set dst (v (var a) -: v (var b))
               | 3 -> set dst (v (var a) /: (v (var b) |: Ast.Int 1))
               | 4 -> store "arr" (v (var a) &: Ast.Int 7) (v (var b))
               | _ -> set dst (load "arr" (v (var b) &: Ast.Int 7)))))
    in
    return
      (kernel
         ~ports:[ in_scalar "seed" Ty.U32; out_scalar "out" Ty.U32 ]
         ~locals:[ ("v0", Ty.U32); ("v1", Ty.U32); ("v2", Ty.U32); ("v3", Ty.U32) ]
         ~arrays:[ Ast.Build.array "arr" Ty.U32 8 ]
         ((set "v0" (v "seed") :: ops) @ [ set "out" (v "v1" +: v "v2" +: v "v3") ])))

let prop_list_schedule_legal =
  QCheck.Test.make ~name:"list schedule legal on random straight-line code" ~count:60
    (QCheck.make straightline_gen) (fun k ->
      Sched.verify (sched_of k) = [])

let prop_asap_not_longer_than_list =
  QCheck.Test.make ~name:"ASAP makespan <= list-scheduling makespan" ~count:60
    (QCheck.make straightline_gen) (fun k ->
      let len strategy resources =
        let s = sched_of ~strategy ~resources k in
        Array.fold_left (fun acc (b : Sched.block_schedule) -> acc + b.Sched.nsteps) 0 s.Sched.blocks
      in
      len Sched.Asap Sched.unlimited <= len Sched.List_scheduling Sched.default_resources)

(* ------------------------------------------------------------------ *)
(* FSMD differential tests                                             *)
(* ------------------------------------------------------------------ *)

let test_fsmd_scalar_add () =
  ignore
    (differential ~scalars:[ ("a", 41); ("b", 1) ]
       (kernel
          ~ports:[ in_scalar "a" Ty.U32; in_scalar "b" Ty.U32; out_scalar "r" Ty.U32 ]
          [ set "r" (v "a" +: v "b") ]))

let test_fsmd_branching () =
  let k =
    kernel
      ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
      [ if_ (v "a" >: int 100) [ set "r" (v "a" -: int 100) ] [ set "r" (int 100 -: v "a") ] ]
  in
  ignore (differential ~scalars:[ ("a", 150) ] k);
  ignore (differential ~scalars:[ ("a", 50) ] k)

let test_fsmd_loop () =
  ignore
    (differential ~scalars:[ ("n", 10) ]
       (kernel
          ~ports:[ in_scalar "n" Ty.U32; out_scalar "r" Ty.U32 ]
          ~locals:[ ("i", Ty.U32); ("acc", Ty.U32) ]
          [
            set "acc" (int 0);
            for_ "i" ~from:(int 0) ~below:(v "n") [ set "acc" (v "acc" +: (v "i" *: v "i")) ];
            set "r" (v "acc");
          ]))

let test_fsmd_division () =
  ignore
    (differential ~scalars:[ ("a", 1000); ("b", 7) ]
       (kernel
          ~ports:[ in_scalar "a" Ty.U32; in_scalar "b" Ty.U32; out_scalar "q" Ty.U32; out_scalar "m" Ty.U32 ]
          [ set "q" (v "a" /: v "b"); set "m" (v "a" %: v "b") ]))

let test_fsmd_array () =
  ignore
    (differential
       (kernel
          ~ports:[ out_scalar "r" Ty.U32 ]
          ~locals:[ ("i", Ty.U32); ("acc", Ty.U32) ]
          ~arrays:[ array "a" Ty.U32 16 ]
          [
            for_ "i" ~from:(int 0) ~below:(int 16) [ store "a" (v "i") (v "i" *: int 3) ];
            set "acc" (int 0);
            for_ "i" ~from:(int 0) ~below:(int 16) [ set "acc" (v "acc" +: load "a" (v "i")) ];
            set "r" (v "acc");
          ]))

let test_fsmd_array_init () =
  ignore
    (differential
       (kernel
          ~ports:[ out_scalar "r" Ty.U32 ]
          ~arrays:[ array ~init:[| 3; 14; 15; 92 |] "c" Ty.U32 4 ]
          [ set "r" (load "c" (int 0) +: load "c" (int 3)) ]))

let test_fsmd_streams () =
  ignore
    (differential ~streams:[ ("xs", [ 5; 10; 15 ]) ]
       (kernel
          ~ports:[ in_stream "xs" Ty.U32; out_stream "ys" Ty.U32 ]
          ~locals:[ ("i", Ty.U32); ("x", Ty.U32) ]
          [ for_ "i" ~from:(int 0) ~below:(int 3) [ pop "x" "xs"; push "ys" (v "x" *: v "x") ] ]))

let test_fsmd_narrow_stream_widths () =
  (* An 8-bit stream port truncates beats to a byte in both worlds: the RTL
     because TDATA has 8 wires, the interpreter by explicit port-width
     masking. Values above 255 exercise the truncation. *)
  let k =
    kernel
      ~ports:[ in_stream "xs" Ty.U8; out_stream "ys" Ty.U8 ]
      ~locals:[ ("i", Ty.U32); ("x", Ty.U32) ]
      [
        for_ "i" ~from:(int 0) ~below:(int 4)
          [ pop "x" "xs"; push "ys" (v "x" *: int 3) ];
      ]
  in
  let rt = differential ~streams:[ ("xs", [ 300; 255; 7; 1000 ]) ] k in
  (* 300 -> 44; 44*3=132. 255*3=765 -> 253. 7*3=21. 1000 -> 232; *3=696 -> 184. *)
  check (Alcotest.list Alcotest.int) "byte semantics" [ 132; 253; 21; 184 ]
    (List.assoc "ys" rt.Soc_hls.Testbench.out_streams)

let test_fsmd_multi_stream_interleave () =
  let k =
    kernel
      ~ports:[ in_stream "a" Ty.U32; in_stream "b" Ty.U32; out_stream "o" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("x", Ty.U32); ("y", Ty.U32) ]
      [
        for_ "i" ~from:(int 0) ~below:(int 4)
          [ pop "x" "a"; pop "y" "b"; push "o" (v "x" -: v "y") ];
      ]
  in
  ignore (differential ~streams:[ ("a", [ 10; 20; 30; 40 ]); ("b", [ 1; 2; 3; 4 ]) ] k)

let test_fsmd_otsu_kernels_differential () =
  (* The actual case-study kernels, small geometry. *)
  let w = 8 and h = 8 in
  let rgb = Soc_apps.Image.synthetic_rgb ~width:w ~height:h () in
  let pixels = Array.to_list rgb.Soc_apps.Image.rgb in
  ignore
    (differential ~streams:[ ("imageIn", pixels) ]
       (Soc_apps.Otsu.gray_scale_kernel ~pixels:(w * h)));
  let gray = Soc_apps.Otsu.Golden.gray_scale rgb in
  ignore
    (differential
       ~streams:[ ("grayScaleImage", Array.to_list gray.Soc_apps.Image.pixels) ]
       (Soc_apps.Otsu.histogram_kernel ~pixels:(w * h)));
  let hist = Soc_apps.Image.histogram gray in
  ignore
    (differential
       ~streams:[ ("histogram", Array.to_list hist) ]
       (Soc_apps.Otsu.otsu_method_kernel ~pixels:(w * h)))

let test_fsmd_restartable () =
  (* Running the same accelerator twice must give fresh results (sticky
     state cleared, arrays re-zeroed by the kernel). *)
  let k = Soc_apps.Otsu.histogram_kernel ~pixels:4 in
  let accel = Soc_hls.Engine.synthesize k in
  let run data =
    (* fresh testbench, same netlist object *)
    Soc_hls.Testbench.run ~streams:[ ("grayScaleImage", data) ] accel.Soc_hls.Engine.fsmd
  in
  let r1 = run [ 1; 1; 2; 3 ] in
  let r2 = run [ 5; 5; 5; 5 ] in
  let hist1 = List.assoc "histogram" r1.Soc_hls.Testbench.out_streams in
  let hist2 = List.assoc "histogram" r2.Soc_hls.Testbench.out_streams in
  check Alcotest.int "first run bin1" 2 (List.nth hist1 1);
  check Alcotest.int "second run bin5" 4 (List.nth hist2 5);
  check Alcotest.int "second run bin1 re-zeroed" 0 (List.nth hist2 1)

let test_fsmd_backpressure_stall_safe () =
  (* Sink accepts one beat every 7 cycles: output data must be unchanged.
     This exercises the advance-gating logic under stalls. *)
  let k =
    kernel
      ~ports:[ in_stream "xs" Ty.U32; out_stream "ys" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("x", Ty.U32) ]
      ~arrays:[ array "buf" Ty.U32 8 ]
      [
        for_ "i" ~from:(int 0) ~below:(int 8)
          [ pop "x" "xs"; store "buf" (v "i") (v "x" *: int 7) ];
        for_ "i" ~from:(int 0) ~below:(int 8) [ push "ys" (load "buf" (v "i") +: v "i") ];
      ]
  in
  let accel = Soc_hls.Engine.synthesize k in
  let fsmd = accel.Soc_hls.Engine.fsmd in
  let sim = Soc_rtl.Sim.create fsmd.Soc_hls.Fsmd.netlist in
  let input = Queue.create () in
  List.iter (fun v -> Queue.push v input) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let xs = List.assoc "xs" fsmd.Soc_hls.Fsmd.stream_in in
  let ys = List.assoc "ys" fsmd.Soc_hls.Fsmd.stream_out in
  Soc_rtl.Sim.set_input sim fsmd.Soc_hls.Fsmd.ap_start 1;
  let out = ref [] in
  let cycles = ref 0 in
  let finished = ref false in
  while (not !finished) && !cycles < 100_000 do
    (* stuttering sink *)
    let ready = if !cycles mod 7 = 0 then 1 else 0 in
    (if Queue.is_empty input then Soc_rtl.Sim.set_input sim xs.Soc_hls.Fsmd.in_tvalid 0
     else begin
       Soc_rtl.Sim.set_input sim xs.Soc_hls.Fsmd.in_tvalid 1;
       Soc_rtl.Sim.set_input sim xs.Soc_hls.Fsmd.in_tdata (Queue.peek input)
     end);
    Soc_rtl.Sim.set_input sim ys.Soc_hls.Fsmd.out_tready ready;
    Soc_rtl.Sim.settle sim;
    if Soc_rtl.Sim.value sim xs.Soc_hls.Fsmd.in_tready = 1 && not (Queue.is_empty input) then
      ignore (Queue.pop input);
    if Soc_rtl.Sim.value sim ys.Soc_hls.Fsmd.out_tvalid = 1 && ready = 1 then
      out := Soc_rtl.Sim.value sim ys.Soc_hls.Fsmd.out_tdata :: !out;
    if Soc_rtl.Sim.value sim fsmd.Soc_hls.Fsmd.ap_done = 1 then finished := true;
    Soc_rtl.Sim.tick sim;
    incr cycles
  done;
  check Alcotest.bool "finished" true !finished;
  check (Alcotest.list Alcotest.int) "stall-safe output"
    [ 7; 15; 23; 31; 39; 47; 55; 63 ] (List.rev !out)

let test_fsmd_slow_source () =
  (* Source provides one beat every 5 cycles. *)
  let k =
    kernel
      ~ports:[ in_stream "xs" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("x", Ty.U32); ("acc", Ty.U32) ]
      [
        set "acc" (int 0);
        for_ "i" ~from:(int 0) ~below:(int 5) [ pop "x" "xs"; set "acc" (v "acc" +: v "x") ];
        set "r" (v "acc");
      ]
  in
  let accel = Soc_hls.Engine.synthesize k in
  let fsmd = accel.Soc_hls.Engine.fsmd in
  let sim = Soc_rtl.Sim.create fsmd.Soc_hls.Fsmd.netlist in
  let xs = List.assoc "xs" fsmd.Soc_hls.Fsmd.stream_in in
  let data = ref [ 10; 20; 30; 40; 50 ] in
  Soc_rtl.Sim.set_input sim fsmd.Soc_hls.Fsmd.ap_start 1;
  let cycles = ref 0 and finished = ref false in
  while (not !finished) && !cycles < 100_000 do
    let valid = !cycles mod 5 = 0 && !data <> [] in
    (match !data with
    | x :: _ when valid ->
      Soc_rtl.Sim.set_input sim xs.Soc_hls.Fsmd.in_tvalid 1;
      Soc_rtl.Sim.set_input sim xs.Soc_hls.Fsmd.in_tdata x
    | _ -> Soc_rtl.Sim.set_input sim xs.Soc_hls.Fsmd.in_tvalid 0);
    Soc_rtl.Sim.settle sim;
    (if valid && Soc_rtl.Sim.value sim xs.Soc_hls.Fsmd.in_tready = 1 then
       match !data with [] -> () | _ :: rest -> data := rest);
    if Soc_rtl.Sim.value sim fsmd.Soc_hls.Fsmd.ap_done = 1 then finished := true;
    Soc_rtl.Sim.tick sim;
    incr cycles
  done;
  check Alcotest.bool "finished" true !finished;
  let out = List.assoc "r" fsmd.Soc_hls.Fsmd.scalar_out in
  check Alcotest.int "sum" 150 (Soc_rtl.Sim.value sim out)

(* ------------------------------------------------------------------ *)
(* Random kernel differential property                                 *)
(* ------------------------------------------------------------------ *)

(* Random kernels: a prologue, a main loop popping one beat per iteration
   with a random body, and an epilogue, over 4 vars + an 8-entry array. *)
let random_kernel_gen =
  QCheck.Gen.(
    let var i = Printf.sprintf "v%d" (i mod 4) in
    let rec expr_gen depth =
      if depth = 0 then
        oneof
          [ (let* i = int_bound 3 in return (v (var i)));
            (let* c = int_bound 1000 in return (Ast.Int c)) ]
      else
        frequency
          [
            (3, let* i = int_bound 3 in return (v (var i)));
            (2, let* c = int_bound 1000 in return (Ast.Int c));
            ( 4,
              let* op =
                oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Shr;
                         Ast.Lt; Ast.Ult; Ast.Eq; Ast.Ne ]
              in
              let* a = expr_gen (depth - 1) in
              let* b = expr_gen (depth - 1) in
              return (Ast.Bin (op, a, b)) );
            ( 1,
              (* guarded division *)
              let* a = expr_gen (depth - 1) in
              let* b = expr_gen (depth - 1) in
              return (Ast.Bin (Ast.Udiv, a, Ast.Bin (Ast.Bor, b, Ast.Int 1))) );
            ( 1,
              let* a = expr_gen (depth - 1) in
              return (load "arr" (Ast.Bin (Ast.Band, a, Ast.Int 7))) );
          ]
    in
    let stmt_gen depth =
      frequency
        [
          ( 4,
            let* i = int_bound 3 in
            let* e = expr_gen depth in
            return (set (var i) e) );
          ( 2,
            let* a = expr_gen (depth - 1) in
            let* e = expr_gen depth in
            return (store "arr" (Ast.Bin (Ast.Band, a, Ast.Int 7)) e) );
          ( 1,
            let* c = expr_gen (depth - 1) in
            let* i = int_bound 3 in
            let* e1 = expr_gen (depth - 1) in
            let* e2 = expr_gen (depth - 1) in
            return (if_ c [ set (var i) e1 ] [ set (var i) e2 ]) );
          ( 1,
            let* e = expr_gen depth in
            return (push "ys" e) );
        ]
    in
    let* n_iters = int_range 0 6 in
    let* prologue = list_size (int_bound 4) (stmt_gen 2) in
    let* body = list_size (int_bound 5) (stmt_gen 2) in
    let* epilogue = list_size (int_bound 4) (stmt_gen 2) in
    let* input = flatten_l (List.init n_iters (fun _ -> int_bound 10_000)) in
    let k =
      kernel ~name:"rand"
        ~ports:
          [ in_stream "xs" Ty.U32; out_stream "ys" Ty.U32; out_scalar "r" Ty.U32 ]
        ~locals:
          [ ("v0", Ty.U32); ("v1", Ty.U32); ("v2", Ty.U32); ("v3", Ty.U32); ("i", Ty.U32) ]
        ~arrays:[ Ast.Build.array "arr" Ty.U32 8 ]
        (prologue
        @ [
            for_ "i" ~from:(Ast.Int 0) ~below:(Ast.Int n_iters)
              (pop "v0" "xs" :: body);
          ]
        @ epilogue
        @ [ set "r" (v "v0" +: v "v1" +: v "v2" +: v "v3") ])
    in
    return (k, input))

let prop_random_kernel_differential =
  QCheck.Test.make ~name:"random kernels: interpreter = RTL" ~count:40
    (QCheck.make random_kernel_gen) (fun (k, input) ->
      let ri = Interp.run_kernel ~streams:[ ("xs", input) ] k in
      let accel = Soc_hls.Engine.synthesize k in
      let rt =
        Soc_hls.Testbench.run ~streams:[ ("xs", input) ] accel.Soc_hls.Engine.fsmd
      in
      List.assoc "r" ri.Interp.out_scalars = List.assoc "r" rt.Soc_hls.Testbench.out_scalars
      && Interp.Channels.drain ri.Interp.channels "ys"
         = List.assoc "ys" rt.Soc_hls.Testbench.out_streams)

(* Resource-config ablation: the same random kernel synthesized with tight
   and loose resources must still compute the same function. *)
let prop_resources_preserve_semantics =
  QCheck.Test.make ~name:"resource constraints preserve semantics" ~count:15
    (QCheck.make random_kernel_gen) (fun (k, input) ->
      let run resources =
        let config = { Soc_hls.Engine.default_config with Soc_hls.Engine.resources } in
        let accel = Soc_hls.Engine.synthesize ~config k in
        let rt = Soc_hls.Testbench.run ~streams:[ ("xs", input) ] accel.Soc_hls.Engine.fsmd in
        (List.assoc "r" rt.Soc_hls.Testbench.out_scalars,
         List.assoc "ys" rt.Soc_hls.Testbench.out_streams)
      in
      run { Sched.alus_per_op = 1; multipliers = 1; dividers = 1 }
      = run { Sched.alus_per_op = 4; multipliers = 4; dividers = 2 })

(* ------------------------------------------------------------------ *)
(* Reports and artifacts                                               *)
(* ------------------------------------------------------------------ *)

let test_report_fields () =
  let accel = Soc_hls.Engine.synthesize (Soc_apps.Otsu.histogram_kernel ~pixels:64) in
  let r = accel.Soc_hls.Engine.report in
  check Alcotest.bool "brams for hist array" true (r.Soc_hls.Report.resources.Soc_hls.Report.bram18 >= 1);
  check Alcotest.bool "ffs" true (r.Soc_hls.Report.resources.Soc_hls.Report.ff > 0);
  check Alcotest.bool "luts" true (r.Soc_hls.Report.resources.Soc_hls.Report.lut > 0);
  check Alcotest.bool "fsm states" true (r.Soc_hls.Report.fsm_states > 4)

let test_dsp_only_with_mul () =
  let no_mul =
    Soc_hls.Engine.synthesize
      (kernel ~name:"nomul"
         ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
         [ set "r" (v "a" +: int 1) ])
  in
  let with_mul =
    Soc_hls.Engine.synthesize
      (kernel ~name:"mul"
         ~ports:[ in_scalar "a" Ty.U32; out_scalar "r" Ty.U32 ]
         [ set "r" (v "a" *: v "a") ])
  in
  check Alcotest.int "no dsp" 0 no_mul.Soc_hls.Engine.report.Soc_hls.Report.resources.Soc_hls.Report.dsp;
  check Alcotest.bool "dsp used" true
    (with_mul.Soc_hls.Engine.report.Soc_hls.Report.resources.Soc_hls.Report.dsp >= 1)

let test_fu_sharing_bounds_dsps () =
  (* Five multiplies under a 2-multiplier budget: at most 2 DSP pairs. *)
  let config =
    { Soc_hls.Engine.default_config with
      Soc_hls.Engine.resources = { Sched.alus_per_op = 2; multipliers = 2; dividers = 1 } }
  in
  let accel = Soc_hls.Engine.synthesize ~config big_expression_kernel in
  check Alcotest.bool "dsp bounded by binding" true
    (accel.Soc_hls.Engine.report.Soc_hls.Report.resources.Soc_hls.Report.dsp <= 2)

let test_directives_generated () =
  let accel = Soc_hls.Engine.synthesize (Soc_apps.Otsu.segment_kernel ~pixels:16) in
  check Alcotest.bool "axis directive" true
    (Tstr.contains accel.Soc_hls.Engine.directives "-mode axis");
  check Alcotest.bool "axilite return" true
    (Tstr.contains accel.Soc_hls.Engine.directives "-mode s_axilite")

let test_verilog_artifact () =
  let accel = Soc_hls.Engine.synthesize (Soc_apps.Filters.add_kernel) in
  check Alcotest.bool "verilog has module ADD" true
    (Tstr.contains accel.Soc_hls.Engine.verilog "module ADD")

let test_illegal_schedule_detected () =
  (* verify must flag a corrupted schedule. *)
  let k = big_expression_kernel in
  let s = sched_of k in
  (* Corrupt: move every op to cstep 0. *)
  Array.iter
    (fun (b : Sched.block_schedule) -> Array.fill b.Sched.csteps 0 (Array.length b.Sched.csteps) 0)
    s.Sched.blocks;
  check Alcotest.bool "violations reported" true (Sched.verify s <> [])

let suite =
  [
    ("asap schedule legal", `Quick, test_asap_legal);
    ("list schedule legal", `Quick, test_list_schedule_legal);
    ("resource constraints lengthen schedule", `Quick, test_resource_constraint_lengthens);
    ("tight resources legal", `Quick, test_tight_resources_still_legal);
    ("stream ops serialized", `Quick, test_stream_ops_serialized);
    ("fsmd scalar add", `Quick, test_fsmd_scalar_add);
    ("fsmd branching", `Quick, test_fsmd_branching);
    ("fsmd loop", `Quick, test_fsmd_loop);
    ("fsmd division", `Quick, test_fsmd_division);
    ("fsmd array", `Quick, test_fsmd_array);
    ("fsmd array init", `Quick, test_fsmd_array_init);
    ("fsmd streams", `Quick, test_fsmd_streams);
    ("fsmd narrow stream widths", `Quick, test_fsmd_narrow_stream_widths);
    ("fsmd multi-stream interleave", `Quick, test_fsmd_multi_stream_interleave);
    ("fsmd otsu kernels", `Quick, test_fsmd_otsu_kernels_differential);
    ("fsmd restartable", `Quick, test_fsmd_restartable);
    ("fsmd stall-safe under backpressure", `Quick, test_fsmd_backpressure_stall_safe);
    ("fsmd slow source", `Quick, test_fsmd_slow_source);
    ("report fields", `Quick, test_report_fields);
    ("dsp only with mul", `Quick, test_dsp_only_with_mul);
    ("fu sharing bounds dsps", `Quick, test_fu_sharing_bounds_dsps);
    ("directives artifact", `Quick, test_directives_generated);
    ("verilog artifact", `Quick, test_verilog_artifact);
    ("schedule verifier detects corruption", `Quick, test_illegal_schedule_detected);
    qtest prop_list_schedule_legal;
    qtest prop_asap_not_longer_than_list;
    qtest prop_random_kernel_differential;
    qtest prop_resources_preserve_semantics;
  ]

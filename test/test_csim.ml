(* Tests for the compiled co-simulation backend (lib/rtl/compile): the
   interpreter stays the differential oracle, so most tests here run both
   backends in lockstep and demand cycle-exact equality. *)

module NL = Soc_rtl.Netlist
module Sim = Soc_rtl.Sim
module Tape = Soc_rtl_compile.Tape
module Opt = Soc_rtl_compile.Opt
module Csim = Soc_rtl_compile.Csim
module Engine = Soc_rtl_compile.Engine

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Stack safety of the shared topological sort (satellite of the tape
   backend: lowering reuses [Sim.topo_combs])                          *)
(* ------------------------------------------------------------------ *)

let deep_chain_netlist n =
  let net = NL.create "deep" in
  let x = NL.input net ~name:"x" ~width:32 in
  let prev = ref (NL.Ref x) in
  for i = 1 to n do
    let s = NL.fresh net ~name:(Printf.sprintf "c%d" i) ~width:32 in
    NL.assign net s (NL.Bin (Soc_kernel.Ast.Add, !prev, NL.Const (1, 32)));
    prev := NL.Ref s
  done;
  let o = NL.output net ~name:"y" ~width:32 in
  NL.assign net o !prev;
  (net, x, o)

let test_deep_chain_stack_safe () =
  (* 50k chained combs: the old recursive DFS overflowed the stack long
     before this. Both backends must survive and agree. *)
  let n = 50_000 in
  let net, x, o = deep_chain_netlist n in
  let sim = Sim.create net in
  Sim.set_input sim x 5;
  Sim.settle sim;
  check Alcotest.int "interp deep chain" (5 + n) (Sim.value sim o);
  let c = Csim.create net in
  Csim.set_input c x 5;
  Csim.settle c;
  check Alcotest.int "compiled deep chain" (5 + n) (Csim.value c o)

let test_comb_cycle_still_detected () =
  let net = NL.create "loop" in
  let a = NL.fresh net ~name:"a" ~width:8 in
  let b = NL.fresh net ~name:"b" ~width:8 in
  NL.assign net a (NL.Ref b);
  NL.assign net b (NL.Ref a);
  (match Sim.create net with
  | exception Sim.Combinational_cycle names ->
    check Alcotest.bool "cycle names reported" true (List.length names >= 2)
  | _ -> Alcotest.fail "expected Combinational_cycle")

(* ------------------------------------------------------------------ *)
(* Random-netlist differential oracle                                  *)
(* ------------------------------------------------------------------ *)

let binops =
  Soc_kernel.Ast.
    [| Add; Sub; Mul; Div; Rem; Udiv; Urem; Band; Bor; Bxor; Shl; Shr; Ashr;
       Eq; Ne; Lt; Le; Gt; Ge; Ult; Ule; Ugt; Uge |]

let unops = Soc_kernel.Ast.[| Neg; Bnot; Lnot |]

(* Layered construction: every expression references only signals that
   already exist, so the combinational part is a DAG by construction
   (register outputs and memory read ports may feed anything). *)
let random_netlist seed =
  let rng = Soc_util.Rng.create seed in
  let rand n = Soc_util.Rng.int rng n in
  let net = NL.create "rand" in
  let inputs =
    List.init
      (1 + rand 3)
      (fun i -> NL.input net ~name:(Printf.sprintf "in%d" i) ~width:(1 + rand 32))
  in
  let pool = ref inputs in
  let pick () = List.nth !pool (rand (List.length !pool)) in
  let rec rexpr d =
    if d = 0 || rand 4 = 0 then
      if rand 3 = 0 then NL.Const (rand 0x10000, 1 + rand 32) else NL.Ref (pick ())
    else
      match rand 8 with
      | 0 -> NL.Un (unops.(rand 3), rexpr (d - 1))
      | 1 -> NL.Mux (rexpr (d - 1), rexpr (d - 1), rexpr (d - 1))
      | _ -> NL.Bin (binops.(rand 23), rexpr (d - 1), rexpr (d - 1))
  in
  let comb_layer tag n =
    for i = 0 to n - 1 do
      let s =
        NL.fresh net ~name:(Printf.sprintf "%s%d" tag i) ~width:(1 + rand 32)
      in
      NL.assign net s (rexpr (1 + rand 3));
      pool := s :: !pool
    done
  in
  comb_layer "w" (3 + rand 10);
  for i = 0 to rand 4 - 1 do
    let q =
      NL.register net ~reset_value:(rand 0x100)
        ~enable:(if rand 2 = 0 then NL.one else rexpr 2)
        ~name:(Printf.sprintf "r%d" i) ~width:(1 + rand 32)
        (fun q -> NL.Bin (Soc_kernel.Ast.Add, NL.Ref q, rexpr 2))
    in
    pool := q :: !pool
  done;
  if rand 2 = 0 then begin
    let size = 4 + rand 12 in
    let rdata =
      NL.add_mem net ~name:"m0" ~size ~width:(1 + rand 32) ~raddr:(rexpr 2)
        ~wen:(rexpr 1) ~waddr:(rexpr 2) ~wdata:(rexpr 2)
        ?init:
          (if rand 2 = 0 then Some (Array.init size (fun _ -> rand 0x10000))
           else None)
        ()
    in
    pool := rdata :: !pool
  end;
  comb_layer "z" (2 + rand 6);
  List.iteri
    (fun i s ->
      let o = NL.output net ~name:(Printf.sprintf "out%d" i) ~width:s.NL.width in
      NL.assign net o (NL.Ref s))
    (List.filteri (fun i _ -> i < 1 + rand 3) !pool);
  (net, inputs)

(* Everything the DCE contract keeps observable must agree cycle by
   cycle: outputs, register states, memory read ports; and the memory
   arrays must match at the end. *)
let diff_run seed =
  let net, inputs = random_netlist seed in
  let rng = Soc_util.Rng.create (seed lxor 0x5bd1e995) in
  let sim = Sim.create net in
  let c = Csim.create net in
  let observed =
    net.NL.outputs
    @ List.map (fun (r : NL.reg) -> r.NL.q) net.NL.regs
    @ List.map (fun (m : NL.mem) -> m.NL.rdata) net.NL.mems
  in
  for cyc = 1 to 15 do
    List.iter
      (fun i ->
        let v = Soc_util.Rng.int rng 0x40000000 in
        Sim.set_input sim i v;
        Csim.set_input c i v)
      inputs;
    Sim.settle sim;
    Csim.settle c;
    List.iter
      (fun s ->
        if Sim.value sim s <> Csim.value c s then
          Alcotest.failf "seed %d cycle %d: %s interp=%d compiled=%d" seed cyc
            s.NL.sname (Sim.value sim s) (Csim.value c s))
      observed;
    Sim.tick sim;
    Csim.tick c
  done;
  List.iter
    (fun (m : NL.mem) ->
      let a = Option.get (Sim.mem_contents sim m.NL.mem_name) in
      let b = Option.get (Csim.mem_contents c m.NL.mem_name) in
      if a <> b then Alcotest.failf "seed %d: memory %s diverged" seed m.NL.mem_name)
    net.NL.mems;
  true

let test_differential_random =
  QCheck.Test.make ~count:60 ~name:"compiled = interpreted on random netlists"
    QCheck.(make Gen.(0 -- 100_000))
    diff_run

(* ------------------------------------------------------------------ *)
(* Optimizer: folds, specializes and sweeps without changing meaning   *)
(* ------------------------------------------------------------------ *)

let test_optimizer_folds_and_dce () =
  let net = NL.create "opt" in
  let x = NL.input net ~name:"x" ~width:32 in
  (* Constant subgraph: (3 + 4) * 2 folds to 14 at lowering time. *)
  let k = NL.fresh net ~name:"k" ~width:32 in
  NL.assign net k
    (NL.Bin
       ( Soc_kernel.Ast.Mul,
         NL.Bin (Soc_kernel.Ast.Add, NL.Const (3, 32), NL.Const (4, 32)),
         NL.Const (2, 32) ));
  (* Two structurally identical subexpressions: CSE shares them. *)
  let shared () = NL.Bin (Soc_kernel.Ast.Mul, NL.Ref x, NL.Ref x) in
  let a = NL.fresh net ~name:"a" ~width:32 in
  NL.assign net a (NL.Bin (Soc_kernel.Ast.Add, shared (), NL.Ref k));
  let b = NL.fresh net ~name:"b" ~width:32 in
  NL.assign net b (NL.Bin (Soc_kernel.Ast.Sub, shared (), NL.Ref k));
  (* A mux with a constant selector specializes to one arm. *)
  let m = NL.fresh net ~name:"m" ~width:32 in
  NL.assign net m (NL.Mux (NL.Const (1, 1), NL.Ref a, NL.Ref b));
  (* Dead logic: never reaches an output or state element. *)
  let dead = NL.fresh net ~name:"dead" ~width:32 in
  NL.assign net dead (NL.Bin (Soc_kernel.Ast.Mul, NL.Ref x, NL.Const (99, 32)));
  let o = NL.output net ~name:"o" ~width:32 in
  NL.assign net o (NL.Ref m);
  let c = Csim.create net in
  let st = Csim.stats c in
  check Alcotest.bool "constants folded" true (st.Tape.folded > 0);
  check Alcotest.bool "mux specialized" true (st.Tape.mux_selected > 0);
  check Alcotest.bool "CSE fired" true (st.Tape.cse_hits > 0);
  check Alcotest.bool "dead code removed" true (st.Tape.dce_removed > 0);
  check Alcotest.bool "tape shrank" true (st.Tape.final < st.Tape.lowered);
  (* And the optimized tape still agrees with the oracle. *)
  let sim = Sim.create net in
  List.iter
    (fun v ->
      Sim.set_input sim x v;
      Csim.set_input c x v;
      Sim.settle sim;
      Csim.settle c;
      check Alcotest.int (Printf.sprintf "o(x=%d)" v) (Sim.value sim o)
        (Csim.value c o))
    [ 0; 1; 7; 0xFFFFFFFF; 123456 ]

(* ------------------------------------------------------------------ *)
(* Tape serialization: versioned text, total deserializer              *)
(* ------------------------------------------------------------------ *)

let test_tape_roundtrip () =
  let net, _ = random_netlist 42 in
  let tape = Opt.run (Tape.lower net) in
  let s = Tape.serialize tape in
  let tape' = Tape.deserialize s in
  check Alcotest.string "roundtrip is byte-stable" s (Tape.serialize tape');
  (* The deserialized tape must drive a working simulator. *)
  ignore (Csim.of_tape tape' net)

let test_tape_rejects_garbage () =
  let reject s =
    match Tape.deserialize s with
    | exception Tape.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" (String.sub s 0 (min 20 (String.length s)))
  in
  reject "";
  reject "not-a-tape\n";
  reject "soc-tape-v0\nmod x\n";
  let net, _ = random_netlist 43 in
  let good = Tape.serialize (Opt.run (Tape.lower net)) in
  reject (String.sub good 0 (String.length good / 2))

let test_tape_mismatch_detected () =
  let net_a, _ = random_netlist 44 in
  let net_b = NL.create "other" in
  let x = NL.input net_b ~name:"x" ~width:8 in
  let o = NL.output net_b ~name:"o" ~width:8 in
  NL.assign net_b o (NL.Ref x);
  let tape_a = Opt.run (Tape.lower net_a) in
  match Csim.of_tape tape_a net_b with
  | exception Csim.Tape_mismatch _ -> ()
  | _ -> Alcotest.fail "expected Tape_mismatch on a foreign tape"

(* ------------------------------------------------------------------ *)
(* Engine dispatch and the farm tape cache                             *)
(* ------------------------------------------------------------------ *)

let test_engine_backend_dispatch () =
  let net, inputs = random_netlist 7 in
  let a = Engine.create ~backend:Engine.Interp net in
  let b = Engine.create ~backend:Engine.Compiled net in
  check Alcotest.bool "interp tag" true (Engine.backend_of a = Engine.Interp);
  check Alcotest.bool "compiled tag" true (Engine.backend_of b = Engine.Compiled);
  check Alcotest.bool "stats only on compiled" true
    (Engine.stats a = None && Engine.stats b <> None);
  List.iter
    (fun i ->
      Engine.set_input a i 3;
      Engine.set_input b i 3)
    inputs;
  Engine.settle a;
  Engine.settle b;
  List.iter
    (fun o -> check Alcotest.int o.NL.sname (Engine.value a o) (Engine.value b o))
    net.NL.outputs

let test_tape_cache_warm_and_disk () =
  let dir = Filename.temp_file "soctape" ".cache" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> Engine.install_tape_cache None)
    (fun () ->
      let net, _ = random_netlist 11 in
      let cache = Soc_farm.Cache.create ~disk_dir:dir () in
      Soc_farm.Cache.enable_tape_cache cache;
      let l0 = Engine.lowering_count () in
      ignore (Engine.create net);
      check Alcotest.int "cold round lowers once" (l0 + 1) (Engine.lowering_count ());
      ignore (Engine.create net);
      check Alcotest.int "warm round lowers nothing" (l0 + 1) (Engine.lowering_count ());
      let ts = Soc_farm.Cache.tape_stats cache in
      check Alcotest.int "stored once" 1 ts.Soc_farm.Cache.tape_stores;
      check Alcotest.bool "memory hit" true (ts.Soc_farm.Cache.tape_hits >= 1);
      (* A fresh cache over the same disk directory: the tape comes back
         from the verified disk layer, still with zero lowering. *)
      let cache2 = Soc_farm.Cache.create ~disk_dir:dir () in
      Soc_farm.Cache.enable_tape_cache cache2;
      ignore (Engine.create net);
      check Alcotest.int "disk round lowers nothing" (l0 + 1) (Engine.lowering_count ());
      let ts2 = Soc_farm.Cache.tape_stats cache2 in
      check Alcotest.int "disk hit" 1 ts2.Soc_farm.Cache.tape_disk_hits)

let test_tape_cache_corruption_quarantined () =
  let dir = Filename.temp_file "soctape" ".cache" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> Engine.install_tape_cache None)
    (fun () ->
      let net, _ = random_netlist 12 in
      let cache = Soc_farm.Cache.create ~disk_dir:dir () in
      Soc_farm.Cache.enable_tape_cache cache;
      ignore (Engine.create net);
      (* Flip a byte in every stored tape entry. *)
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".tape" then begin
            let path = Filename.concat dir f in
            let ic = open_in_bin path in
            let len = in_channel_length ic in
            let buf = really_input_string ic len in
            close_in ic;
            let b = Bytes.of_string buf in
            Bytes.set b (len / 2) '\xff';
            let oc = open_out_bin path in
            output_bytes oc b;
            close_out oc
          end)
        (Sys.readdir dir);
      (* A fresh cache must quarantine the corrupt entry and fall back to
         compiling — never crash, never deserialize garbage. *)
      let cache2 = Soc_farm.Cache.create ~disk_dir:dir () in
      Soc_farm.Cache.enable_tape_cache cache2;
      let l0 = Engine.lowering_count () in
      ignore (Engine.create net);
      check Alcotest.int "corrupt entry recompiled" (l0 + 1) (Engine.lowering_count ());
      check Alcotest.bool "diagnostic emitted" true
        (Soc_farm.Cache.diags cache2 <> []))

(* A lowering failure must never fail the caller: the engine falls back
   to the interpreter, counts it, and remembers the bad key so repeat
   instantiations skip straight past the broken compile. *)
let test_engine_degradation_ladder () =
  let module F = Soc_fault.Fault.Service in
  F.reset ();
  Engine.clear_degraded ();
  Engine.install_tape_cache None;
  Fun.protect
    ~finally:(fun () ->
      F.reset ();
      Engine.clear_degraded ();
      Engine.install_tape_cache None)
    (fun () ->
      let net, inputs = random_netlist 21 in
      let fb0 = Engine.fallback_count () in
      F.arm F.Csim ~times:1 (F.Raise "lowering dies");
      let e = Engine.create ~backend:Engine.Compiled net in
      check Alcotest.bool "fell back to the interpreter" true
        (Engine.backend_of e = Engine.Interp);
      check Alcotest.int "fallback counted" (fb0 + 1) (Engine.fallback_count ());
      check Alcotest.int "bad key remembered" 1 (Engine.degraded_key_count ());
      (* The degraded engine still simulates. *)
      List.iter (fun i -> Engine.set_input e i 1) inputs;
      Engine.settle e;
      (* With a cache installed the sticky key goes straight to the
         interpreter — the lowering is never re-attempted. *)
      let dir = Filename.temp_file "socdeg" ".cache" in
      Sys.remove dir;
      let cache = Soc_farm.Cache.create ~disk_dir:dir () in
      Soc_farm.Cache.enable_tape_cache cache;
      let l0 = Engine.lowering_count () in
      let e2 = Engine.create ~backend:Engine.Compiled net in
      check Alcotest.bool "sticky: interpreter without a retry" true
        (Engine.backend_of e2 = Engine.Interp);
      check Alcotest.int "no lowering re-attempted" l0 (Engine.lowering_count ());
      check Alcotest.int "sticky fallback counted too" (fb0 + 2) (Engine.fallback_count ());
      (* precompile absorbs an injected failure the same way: mark, count,
         carry on — no artifact stored, no exception. *)
      Engine.clear_degraded ();
      F.arm F.Csim ~times:1 (F.Raise "precompile dies");
      Engine.precompile net;
      check Alcotest.int "precompile marks the key" 1 (Engine.degraded_key_count ());
      check Alcotest.int "precompile fallback counted" (fb0 + 3) (Engine.fallback_count ());
      (* Degradation is a memory, not a death sentence: cleared, the same
         netlist compiles again. *)
      Engine.clear_degraded ();
      let e3 = Engine.create ~backend:Engine.Compiled net in
      check Alcotest.bool "recovered to the compiled backend" true
        (Engine.backend_of e3 = Engine.Compiled))

(* ------------------------------------------------------------------ *)
(* VCD byte-identity on a real HLS netlist (Otsu grayScale)            *)
(* ------------------------------------------------------------------ *)

let test_vcd_byte_identical_on_otsu () =
  let width = 8 and height = 8 in
  (* Arch1's one hardware node: computeHistogram (BRAM + streams). *)
  let kernels = Soc_apps.Graphs.arch_kernels Soc_apps.Graphs.Arch1 ~width ~height in
  let _, k = List.hd kernels in
  let accel = Soc_hls.Engine.synthesize k in
  let fsmd = accel.Soc_hls.Engine.fsmd in
  let net = fsmd.Soc_hls.Fsmd.netlist in
  let sim = Sim.create net in
  let c = Csim.create net in
  let vcd_i = Soc_rtl.Vcd.create net sim in
  let vcd_c = Soc_rtl.Vcd.create_with net ~read:(Csim.value c) in
  let rng = Soc_util.Rng.create 99 in
  let _, xs = List.hd fsmd.Soc_hls.Fsmd.stream_in in
  let drive s v =
    Sim.set_input sim s v;
    Csim.set_input c s v
  in
  drive fsmd.Soc_hls.Fsmd.ap_start 1;
  for _ = 1 to 400 do
    drive xs.Soc_hls.Fsmd.in_tvalid 1;
    drive xs.Soc_hls.Fsmd.in_tdata (Soc_util.Rng.int rng 0x1000000);
    List.iter
      (fun (_, ys) -> drive ys.Soc_hls.Fsmd.out_tready 1)
      fsmd.Soc_hls.Fsmd.stream_out;
    Sim.settle sim;
    Csim.settle c;
    Soc_rtl.Vcd.sample vcd_i;
    Soc_rtl.Vcd.sample vcd_c;
    Sim.tick sim;
    Csim.tick c
  done;
  check Alcotest.bool "VCD byte-identical" true
    (Soc_rtl.Vcd.to_string vcd_i = Soc_rtl.Vcd.to_string vcd_c)

let suite =
  [
    Alcotest.test_case "topo: 50k-deep comb chain, both backends" `Quick
      test_deep_chain_stack_safe;
    Alcotest.test_case "topo: combinational cycle still detected" `Quick
      test_comb_cycle_still_detected;
    qtest test_differential_random;
    Alcotest.test_case "optimizer folds, specializes, sweeps; meaning kept" `Quick
      test_optimizer_folds_and_dce;
    Alcotest.test_case "tape text roundtrip is byte-stable" `Quick test_tape_roundtrip;
    Alcotest.test_case "tape deserializer rejects garbage" `Quick
      test_tape_rejects_garbage;
    Alcotest.test_case "foreign tape rejected by executor" `Quick
      test_tape_mismatch_detected;
    Alcotest.test_case "engine dispatches both backends" `Quick
      test_engine_backend_dispatch;
    Alcotest.test_case "farm tape cache: warm rounds never re-lower" `Quick
      test_tape_cache_warm_and_disk;
    Alcotest.test_case "farm tape cache: corruption quarantined" `Quick
      test_tape_cache_corruption_quarantined;
    Alcotest.test_case "engine degradation ladder: compiled -> interp" `Quick
      test_engine_degradation_ladder;
    Alcotest.test_case "VCD byte-identical across backends (Otsu)" `Quick
      test_vcd_byte_identical_on_otsu;
  ]

(* Tests for the DSL itself: the embedded combinators (Section III), the
   external-syntax lexer/parser (Listing 1 EBNF), the pretty-printer
   round-trip, and spec validation. *)

open Soc_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Embedded DSL                                                        *)
(* ------------------------------------------------------------------ *)

let test_edsl_fig4 () =
  let spec = Soc_apps.Graphs.fig4_spec in
  check Alcotest.int "four nodes" 4 (List.length spec.Spec.nodes);
  check Alcotest.int "five edges" 5 (List.length spec.Spec.edges);
  check (Alcotest.list Alcotest.string) "connects" [ "MUL"; "ADD" ] (Spec.connects spec)

let test_edsl_sections_enforced () =
  let bad () =
    Edsl.design "bad" (fun tg ->
        Edsl.edges tg;
        (* edges before nodes *)
        Edsl.end_edges tg)
  in
  match bad () with
  | exception Edsl.Syntax _ -> ()
  | _ -> Alcotest.fail "expected syntax error"

let test_edsl_node_outside_section () =
  match Edsl.design "bad" (fun tg -> ignore (Edsl.node tg "X")) with
  | exception Edsl.Syntax _ -> ()
  | _ -> Alcotest.fail "expected syntax error"

let test_edsl_missing_edges_section () =
  let bad () =
    Edsl.design "bad" (fun tg ->
        Edsl.nodes tg;
        ignore (Edsl.node tg "X" |> Edsl.is "p" |> Edsl.end_);
        Edsl.end_nodes tg)
  in
  match bad () with
  | exception Edsl.Syntax _ -> ()
  | _ -> Alcotest.fail "expected missing edges"

let test_edsl_node_without_interface () =
  let bad () =
    Edsl.design "bad" (fun tg ->
        Edsl.nodes tg;
        ignore (Edsl.node tg "X" |> Edsl.end_);
        Edsl.end_nodes tg;
        Edsl.edges tg;
        Edsl.end_edges tg)
  in
  match bad () with
  | exception Edsl.Syntax _ -> ()
  | _ -> Alcotest.fail "expected interface error"

let test_edsl_trace_mirrors_fig6 () =
  let _, trace =
    Edsl.design_with_trace "t" (fun tg ->
        Edsl.nodes tg;
        ignore (Edsl.node tg "A" |> Edsl.is "in" |> Edsl.is "out" |> Edsl.end_);
        Edsl.end_nodes tg;
        Edsl.edges tg;
        Edsl.link tg Edsl.soc ~to_:(Edsl.port "A" "in");
        Edsl.link tg (Edsl.port "A" "out") ~to_:Edsl.soc;
        Edsl.end_edges tg)
  in
  let has p = List.exists p trace in
  check Alcotest.bool "project created" true
    (has (function Edsl.Created_project "t" -> true | _ -> false));
  check Alcotest.bool "hls project per node" true
    (has (function Edsl.Created_node "A" -> true | _ -> false));
  check Alcotest.bool "synthesis on end" true
    (has (function Edsl.Synthesized_node "A" -> true | _ -> false));
  check Alcotest.bool "integration on end_edges" true
    (has (function Edsl.Executed_integration -> true | _ -> false));
  (* HLS runs before integration, as in Fig. 6. *)
  let idx p =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if p x then i else go (i + 1) rest
    in
    go 0 trace
  in
  check Alcotest.bool "ordering" true
    (idx (function Edsl.Synthesized_node _ -> true | _ -> false)
    < idx (function Edsl.Executed_integration -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Spec validation                                                     *)
(* ------------------------------------------------------------------ *)

let node name ports = Spec.make_node name ports

let test_spec_unknown_node_in_edge () =
  let spec =
    {
      Spec.design_name = "d";
      nodes = [ node "A" [ ("o", Spec.Stream) ] ];
      edges = [ Spec.link_edge (Spec.Port ("A", "o")) (Spec.Port ("B", "i")) ];
    }
  in
  match Spec.validate spec with
  | Error errs ->
    check Alcotest.bool "unknown node" true
      (List.exists (function Spec.Unknown_node "B" -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected error"

let test_spec_lite_port_in_link () =
  let spec =
    {
      Spec.design_name = "d";
      nodes = [ node "A" [ ("p", Spec.Lite) ] ];
      edges = [ Spec.link_edge Spec.Soc (Spec.Port ("A", "p")) ];
    }
  in
  match Spec.validate spec with
  | Error errs ->
    check Alcotest.bool "lite in link" true
      (List.exists (function Spec.Lite_port_in_link _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected error"

let test_spec_direction_conflict () =
  let spec =
    {
      Spec.design_name = "d";
      nodes = [ node "A" [ ("p", Spec.Stream) ] ];
      edges =
        [ Spec.link_edge Spec.Soc (Spec.Port ("A", "p"));
          Spec.link_edge (Spec.Port ("A", "p")) Spec.Soc ];
    }
  in
  match Spec.validate spec with
  | Error errs ->
    check Alcotest.bool "conflict" true
      (List.exists (function Spec.Port_direction_conflict _ -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected error"

let test_spec_port_reuse () =
  let spec =
    {
      Spec.design_name = "d";
      nodes = [ node "A" [ ("p", Spec.Stream) ]; node "B" [ ("i", Spec.Stream) ];
                node "C" [ ("i", Spec.Stream) ] ];
      edges =
        [ Spec.link_edge (Spec.Port ("A", "p")) (Spec.Port ("B", "i"));
          Spec.link_edge (Spec.Port ("A", "p")) (Spec.Port ("C", "i")) ];
    }
  in
  match Spec.validate spec with
  | Error errs ->
    check Alcotest.bool "reuse" true
      (List.exists (function Spec.Port_reused ("A", "p") -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected error"

let test_spec_unconnected_stream () =
  let spec =
    {
      Spec.design_name = "d";
      nodes = [ node "A" [ ("p", Spec.Stream); ("q", Spec.Stream) ] ];
      edges = [ Spec.link_edge Spec.Soc (Spec.Port ("A", "p")) ];
    }
  in
  match Spec.validate spec with
  | Error errs ->
    check Alcotest.bool "unconnected" true
      (List.exists
         (function Spec.Unconnected_stream_port ("A", "q") -> true | _ -> false)
         errs)
  | Ok () -> Alcotest.fail "expected error"

let test_spec_soc_to_soc () =
  let spec =
    { Spec.design_name = "d"; nodes = [ node "A" [ ("p", Spec.Lite) ] ];
      edges = [ Spec.link_edge Spec.Soc Spec.Soc; Spec.connect_edge "A" ] }
  in
  match Spec.validate spec with
  | Error errs ->
    check Alcotest.bool "soc-to-soc" true (List.mem Spec.Soc_to_soc_link errs)
  | Ok () -> Alcotest.fail "expected error"

let test_spec_connect_needs_lite () =
  let spec =
    {
      Spec.design_name = "d";
      nodes = [ node "A" [ ("p", Spec.Stream) ] ];
      edges =
        [ Spec.connect_edge "A"; Spec.link_edge Spec.Soc (Spec.Port ("A", "p")) ];
    }
  in
  match Spec.validate spec with
  | Error errs ->
    check Alcotest.bool "no lite port" true
      (List.exists (function Spec.Stream_port_in_connect "A" -> true | _ -> false) errs)
  | Ok () -> Alcotest.fail "expected error"

let test_spec_direction_inference () =
  let spec = Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch3 in
  check Alcotest.bool "input" true
    (Spec.stream_direction spec ~node:"computeHistogram" ~port:"grayScaleImage"
    = Some Spec.Input);
  check Alcotest.bool "output" true
    (Spec.stream_direction spec ~node:"halfProbability" ~port:"probability"
    = Some Spec.Output);
  check Alcotest.bool "unknown port" true
    (Spec.stream_direction spec ~node:"computeHistogram" ~port:"nope" = None)

(* ------------------------------------------------------------------ *)
(* External syntax: lexer                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "tg node \"A\" is \"p\" end; 'soc (," in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  check Alcotest.bool "keywords and literals" true
    (kinds
    = [ Lexer.Kw "tg"; Lexer.Kw "node"; Lexer.Str "A"; Lexer.Kw "is"; Lexer.Str "p";
        Lexer.Kw "end"; Lexer.Semi; Lexer.Soc; Lexer.Lparen; Lexer.Comma; Lexer.Eof ])

let test_lexer_comments () =
  let toks = Lexer.tokenize "// line\ntg /* block\nspanning */ nodes" in
  check Alcotest.int "comments skipped" 3 (List.length toks)

let test_lexer_unterminated_string () =
  match Lexer.tokenize "tg node \"oops" with
  | exception Lexer.Lex_error (_, 1, _) -> ()
  | _ -> Alcotest.fail "expected lex error"

let test_lexer_unterminated_comment () =
  match Lexer.tokenize "/* never closed" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

let test_lexer_bad_symbol () =
  match Lexer.tokenize "'bus" with
  | exception Lexer.Lex_error (msg, _, _) ->
    check Alcotest.bool "mentions symbol" true (Tstr.contains msg "bus")
  | _ -> Alcotest.fail "expected lex error"

let test_lexer_positions () =
  let toks = Lexer.tokenize "tg\n  node" in
  match toks with
  | [ t1; t2; _eof ] ->
    check Alcotest.int "line 1" 1 t1.Lexer.line;
    check Alcotest.int "line 2" 2 t2.Lexer.line;
    check Alcotest.int "col 3" 3 t2.Lexer.col
  | _ -> Alcotest.fail "token count"

(* ------------------------------------------------------------------ *)
(* External syntax: parser                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_listing4 () =
  let spec = Parser.parse Soc_apps.Graphs.listing4_source in
  check Alcotest.string "project name" "otsu" spec.Spec.design_name;
  check Alcotest.int "nodes" 4 (List.length spec.Spec.nodes);
  check Alcotest.int "edges" 6 (List.length spec.Spec.edges);
  check Alcotest.int "soc inputs" 1 (List.length (Spec.soc_to_node_links spec));
  check Alcotest.int "soc outputs" 1 (List.length (Spec.node_to_soc_links spec));
  check Alcotest.int "internal links" 4 (List.length (Spec.internal_links spec))

let test_parse_connect () =
  let src =
    {|object f extends App {
      tg nodes;
        tg node "MUL" i "A" i "B" end;
      tg end_nodes;
      tg edges;
        tg connect "MUL";
      tg end_edges;
    }|}
  in
  let spec = Parser.parse src in
  check (Alcotest.list Alcotest.string) "connect" [ "MUL" ] (Spec.connects spec)

let test_parse_error_position () =
  match Parser.parse "object x extends App { tg nodes; tg node end" with
  | exception Parser.Parse_error (_, 1, _) -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | _ -> Alcotest.fail "expected parse error"

let test_parse_missing_to () =
  let src =
    {|object f extends App {
      tg nodes; tg node "A" is "o" end; tg end_nodes;
      tg edges; tg link ("A","o") 'soc end; tg end_edges; }|}
  in
  match Parser.parse src with
  | exception Parser.Parse_error (msg, _, _) ->
    check Alcotest.bool "mentions 'to'" true (Tstr.contains msg "to")
  | _ -> Alcotest.fail "expected parse error"

let test_parse_empty_nodes_rejected () =
  match Parser.parse "object f extends App { tg nodes; tg end_nodes; tg edges; tg end_edges; }" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_parse_validates_semantics () =
  (* Syntactically fine, semantically broken (unconnected stream port). *)
  let src =
    {|object f extends App {
      tg nodes; tg node "A" is "o" end; tg end_nodes;
      tg edges; tg end_edges; }|}
  in
  match Parser.parse src with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected validation failure"

let test_parse_result_wrapper () =
  (match Parser.parse_result Soc_apps.Graphs.listing4_source with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Parser.parse_result "garbage" with
  | Error msg -> check Alcotest.bool "position prefix" true (Tstr.contains msg "1:")
  | Ok _ -> Alcotest.fail "expected error"

let test_parse_listings_2_and_3 () =
  (* The paper's Listing 2 (nodes) and Listing 3 (edges) for the Fig. 4
     system, composed into one source. *)
  let src =
    {|object fig4 extends App {
      tg nodes;
        tg node "MUL" i "A" i "B" i "return" end;
        tg node "ADD" i "A" i "B" i "return" end;
        tg node "GAUSS" is "in" is "out" end;
        tg node "EDGE" is "in" is "out" end;
      tg end_nodes;
      tg edges;
        tg connect "MUL";
        tg connect "ADD";
        tg link 'soc to ("GAUSS", "in") end;
        tg link ("GAUSS", "out") to ("EDGE", "in") end;
        tg link ("EDGE", "out") to 'soc end;
      tg end_edges;
    }|}
  in
  let spec = Parser.parse src in
  (* Same structure as the EDSL-built Fig. 4 spec, modulo the "return"
     port spelling (OCaml kernels use "return_" since "return" is not an
     issue in strings — only the node list differs in that one name). *)
  let ref_spec = Soc_apps.Graphs.fig4_spec in
  check Alcotest.int "nodes" (List.length ref_spec.Spec.nodes) (List.length spec.Spec.nodes);
  check (Alcotest.list Alcotest.string) "connects" (Spec.connects ref_spec)
    (Spec.connects spec);
  check Alcotest.int "links" (List.length (Spec.links ref_spec))
    (List.length (Spec.links spec));
  check Alcotest.bool "gauss->edge link present" true
    (List.mem
       ((("GAUSS", "out"), ("EDGE", "in")))
       (Spec.internal_links spec))

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let spec_equal (a : Spec.t) (b : Spec.t) = Spec.strip_spans a = Spec.strip_spans b

let test_roundtrip_listing4 () =
  let spec = Parser.parse Soc_apps.Graphs.listing4_source in
  let spec' = Parser.parse (Printer.to_source spec) in
  check Alcotest.bool "round trip" true (spec_equal spec spec')

let test_roundtrip_fig4 () =
  let spec = Soc_apps.Graphs.fig4_spec in
  let spec' = Parser.parse (Printer.to_source spec) in
  check Alcotest.bool "round trip" true (spec_equal spec spec')

(* Random specs: generate consistent node/edge sets, print, reparse. *)
let random_spec_gen =
  QCheck.Gen.(
    let* n_chains = int_range 1 4 in
    (* Build independent chains soc -> a -> b -> ... -> soc, which are
       always valid, plus AXI-Lite nodes. *)
    let* chain_lens = flatten_l (List.init n_chains (fun _ -> int_range 1 4)) in
    let* n_lite = int_range 0 3 in
    let counter = ref 0 in
    let fresh () =
      incr counter;
      Printf.sprintf "n%d" !counter
    in
    let nodes = ref [] and edges = ref [] in
    List.iter
      (fun len ->
        let names = List.init len (fun _ -> fresh ()) in
        List.iteri
          (fun i name ->
            nodes :=
              Spec.make_node name
                ((if i = 0 then [ ("in", Spec.Stream) ] else [ ("in", Spec.Stream) ])
                @ [ ("out", Spec.Stream) ])
              :: !nodes)
          names;
        (* links *)
        edges := Spec.link_edge Spec.Soc (Spec.Port (List.hd names, "in")) :: !edges;
        List.iteri
          (fun i name ->
            if i < len - 1 then
              edges :=
                Spec.link_edge (Spec.Port (name, "out"))
                  (Spec.Port (List.nth names (i + 1), "in"))
                :: !edges)
          names;
        edges :=
          Spec.link_edge (Spec.Port (List.nth names (len - 1), "out")) Spec.Soc :: !edges)
      chain_lens;
    for _ = 1 to n_lite do
      let name = fresh () in
      nodes := Spec.make_node name [ ("A", Spec.Lite); ("B", Spec.Lite) ] :: !nodes;
      edges := Spec.connect_edge name :: !edges
    done;
    return
      { Spec.design_name = "rand"; nodes = List.rev !nodes; edges = List.rev !edges })

(* Fuzz: the lexer either tokenizes or raises Lex_error — never anything
   else — on arbitrary printable input. *)
let prop_lexer_total =
  QCheck.Test.make ~name:"lexer total on printable input" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun src ->
      match Lexer.tokenize src with
      | _ -> true
      | exception Lexer.Lex_error _ -> true)

(* Fuzz: the parser front end never escapes its declared error channel. *)
let prop_parser_total =
  QCheck.Test.make ~name:"parse_result total on printable input" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 120) QCheck.Gen.printable)
    (fun src ->
      match Parser.parse_result src with Ok _ | Error _ -> true)

let prop_random_specs_validate =
  QCheck.Test.make ~name:"generated chain specs validate" ~count:100
    (QCheck.make random_spec_gen) (fun spec -> Spec.validate spec = Ok ())

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:100 (QCheck.make random_spec_gen)
    (fun spec -> spec_equal spec (Parser.parse (Printer.to_source spec)))

let suite =
  [
    ("edsl builds fig4", `Quick, test_edsl_fig4);
    ("edsl enforces sections", `Quick, test_edsl_sections_enforced);
    ("edsl node outside section", `Quick, test_edsl_node_outside_section);
    ("edsl missing edges section", `Quick, test_edsl_missing_edges_section);
    ("edsl node without interface", `Quick, test_edsl_node_without_interface);
    ("edsl trace mirrors fig6", `Quick, test_edsl_trace_mirrors_fig6);
    ("spec: unknown node", `Quick, test_spec_unknown_node_in_edge);
    ("spec: lite port in link", `Quick, test_spec_lite_port_in_link);
    ("spec: direction conflict", `Quick, test_spec_direction_conflict);
    ("spec: port reuse", `Quick, test_spec_port_reuse);
    ("spec: unconnected stream", `Quick, test_spec_unconnected_stream);
    ("spec: soc-to-soc", `Quick, test_spec_soc_to_soc);
    ("spec: connect needs lite", `Quick, test_spec_connect_needs_lite);
    ("spec: direction inference", `Quick, test_spec_direction_inference);
    ("lexer tokens", `Quick, test_lexer_tokens);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer unterminated string", `Quick, test_lexer_unterminated_string);
    ("lexer unterminated comment", `Quick, test_lexer_unterminated_comment);
    ("lexer bad symbol", `Quick, test_lexer_bad_symbol);
    ("lexer positions", `Quick, test_lexer_positions);
    ("parse listing 4", `Quick, test_parse_listing4);
    ("parse listings 2+3 (fig4)", `Quick, test_parse_listings_2_and_3);
    ("parse connect", `Quick, test_parse_connect);
    ("parse error position", `Quick, test_parse_error_position);
    ("parse missing to", `Quick, test_parse_missing_to);
    ("parse empty nodes", `Quick, test_parse_empty_nodes_rejected);
    ("parse runs validation", `Quick, test_parse_validates_semantics);
    ("parse_result wrapper", `Quick, test_parse_result_wrapper);
    ("round-trip listing4", `Quick, test_roundtrip_listing4);
    ("round-trip fig4", `Quick, test_roundtrip_fig4);
    qtest prop_lexer_total;
    qtest prop_parser_total;
    qtest prop_random_specs_validate;
    qtest prop_print_parse_roundtrip;
  ]

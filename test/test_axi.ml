(* Tests for the AXI substrate: FIFO channels, AXI-Lite register files and
   interconnect, DRAM, DMA engines, protocol checker. *)

open Soc_axi

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Fifo                                                                *)
(* ------------------------------------------------------------------ *)

let test_fifo_registered_propagation () =
  let f = Fifo.create ~name:"f" ~capacity:4 in
  Fifo.push f 7;
  check (Alcotest.option Alcotest.int) "not yet visible" None (Fifo.front f);
  Fifo.commit f;
  check (Alcotest.option Alcotest.int) "visible after commit" (Some 7) (Fifo.front f)

let test_fifo_capacity () =
  let f = Fifo.create ~name:"f" ~capacity:2 in
  Fifo.push f 1;
  Fifo.push f 2;
  check Alcotest.bool "full counts staging" false (Fifo.can_push f);
  Fifo.commit f;
  check Alcotest.bool "still full" false (Fifo.can_push f);
  ignore (Fifo.pop f);
  check Alcotest.bool "space after pop" true (Fifo.can_push f)

let test_fifo_order () =
  let f = Fifo.create ~name:"f" ~capacity:8 in
  List.iter (Fifo.push f) [ 1; 2; 3 ];
  Fifo.commit f;
  let a = Fifo.pop f in
  let b = Fifo.pop f in
  let c = Fifo.pop f in
  check (Alcotest.list Alcotest.int) "fifo order" [ 1; 2; 3 ] [ a; b; c ]

let test_fifo_guards () =
  let f = Fifo.create ~name:"f" ~capacity:1 in
  Alcotest.check_raises "pop empty" (Invalid_argument "Fifo.pop: f empty") (fun () ->
      ignore (Fifo.pop f));
  Fifo.push f 1;
  Alcotest.check_raises "push full" (Invalid_argument "Fifo.push: f full") (fun () ->
      Fifo.push f 2)

let test_fifo_high_water () =
  let f = Fifo.create ~name:"f" ~capacity:8 in
  List.iter (Fifo.push f) [ 1; 2; 3; 4 ];
  Fifo.commit f;
  ignore (Fifo.pop f);
  check Alcotest.int "high water" 4 f.Fifo.high_water

let test_fifo_bram_cost () =
  check Alcotest.int "shallow fifo uses LUTRAM" 0
    (Fifo.bram18_cost (Fifo.create ~name:"s" ~capacity:16));
  check Alcotest.bool "deep fifo uses BRAM" true
    (Fifo.bram18_cost (Fifo.create ~name:"d" ~capacity:4096) >= 7)

(* Property: random push/pop/commit sequences conserve beats. *)
let prop_fifo_conservation =
  QCheck.Test.make ~name:"fifo conserves beats" ~count:200
    QCheck.(list (int_bound 2))
    (fun script ->
      let f = Fifo.create ~name:"p" ~capacity:5 in
      List.iter
        (fun action ->
          match action with
          | 0 -> if Fifo.can_push f then Fifo.push f 1
          | 1 -> if not (Fifo.is_empty f) then ignore (Fifo.pop f)
          | _ -> Fifo.commit f)
        script;
      Fifo.conserved f)

(* ------------------------------------------------------------------ *)
(* Dram                                                                *)
(* ------------------------------------------------------------------ *)

let test_dram_rw () =
  let d = Dram.create ~words:64 () in
  Dram.write d 10 0xdead;
  check Alcotest.int "read back" 0xdead (Dram.read d 10)

let test_dram_block_ops () =
  let d = Dram.create ~words:64 () in
  Dram.write_block d ~addr:4 [| 1; 2; 3 |];
  check (Alcotest.list Alcotest.int) "block" [ 1; 2; 3 ]
    (Array.to_list (Dram.read_block d ~addr:4 ~len:3))

let test_dram_bounds () =
  let d = Dram.create ~words:8 () in
  Alcotest.check_raises "oob" (Invalid_argument "Dram.read: address 8 out of range")
    (fun () -> ignore (Dram.read d 8))

let test_dram_burst_cycles () =
  let d = Dram.create ~first_word_latency:10 ~words:64 () in
  check Alcotest.int "zero burst" 0 (Dram.burst_cycles d ~len:0);
  check Alcotest.int "16-beat burst" 26 (Dram.burst_cycles d ~len:16)

(* ------------------------------------------------------------------ *)
(* AXI-Lite                                                            *)
(* ------------------------------------------------------------------ *)

let test_lite_attach_and_decode () =
  let ic = Lite.create_interconnect () in
  let a = Lite.attach ic ~owner:"a" ~size:0x1000 in
  let b = Lite.attach ic ~owner:"b" ~size:0x1000 in
  check Alcotest.bool "64KiB aligned" true (b.Lite.base - a.Lite.base >= 0x1_0000);
  (match Lite.decode ic (a.Lite.base + 0x10) with
  | Ok (rf, off) ->
    check Alcotest.string "owner" "a" rf.Lite.owner;
    check Alcotest.int "offset" 0x10 off
  | Error _ -> Alcotest.fail "decode failed")

let test_lite_decode_error () =
  let ic = Lite.create_interconnect () in
  match Lite.decode ic 0x100 with
  | Error (Lite.No_slave 0x100) -> ()
  | _ -> Alcotest.fail "expected no slave"

let test_lite_bus_rw () =
  let ic = Lite.create_interconnect () in
  let rf = Lite.attach ic ~owner:"x" ~size:0x1000 in
  (match Lite.bus_write ic (rf.Lite.base + Lite.arg_offset 0) 55 with
  | Ok lat -> check Alcotest.int "write latency" Lite.write_latency lat
  | Error _ -> Alcotest.fail "write failed");
  match Lite.bus_read ic (rf.Lite.base + Lite.arg_offset 0) with
  | Ok (v, lat) ->
    check Alcotest.int "read value" 55 v;
    check Alcotest.int "read latency" Lite.read_latency lat
  | Error _ -> Alcotest.fail "read failed"

let test_lite_peek_does_not_count () =
  let ic = Lite.create_interconnect () in
  let rf = Lite.attach ic ~owner:"x" ~size:0x1000 in
  Lite.rf_poke rf ~offset:0 7;
  ignore (Lite.rf_peek rf ~offset:0);
  check Alcotest.int "no bus transactions" 0 rf.Lite.reads

let test_lite_address_map () =
  let ic = Lite.create_interconnect () in
  ignore (Lite.attach ic ~owner:"a" ~size:0x1000);
  ignore (Lite.attach ic ~owner:"b" ~size:0x1000);
  let map = Lite.address_map ic in
  check Alcotest.int "two segments" 2 (List.length map);
  check Alcotest.string "first owner" "a" (match map with (o, _, _) :: _ -> o | [] -> "")

(* ------------------------------------------------------------------ *)
(* DMA                                                                 *)
(* ------------------------------------------------------------------ *)

let run_mm2s_to_completion dma fifo collect =
  let guard = ref 0 in
  while (not (Dma.mm2s_idle dma)) && !guard < 100_000 do
    Dma.step_mm2s dma;
    Fifo.commit fifo;
    while not (Fifo.is_empty fifo) do
      collect (Fifo.pop fifo)
    done;
    incr guard
  done

let test_mm2s_streams_buffer () =
  let dram = Dram.create ~words:256 () in
  Dram.write_block dram ~addr:8 (Array.init 40 (fun i -> i * 2));
  let fifo = Fifo.create ~name:"f" ~capacity:8 in
  let dma = Dma.create_mm2s ~name:"m" ~dram ~dest:fifo in
  Dma.start_mm2s dma ~addr:8 ~len:40;
  let out = ref [] in
  run_mm2s_to_completion dma fifo (fun v -> out := v :: !out);
  check (Alcotest.list Alcotest.int) "all beats in order"
    (List.init 40 (fun i -> i * 2))
    (List.rev !out)

let test_mm2s_respects_backpressure () =
  let dram = Dram.create ~words:64 () in
  Dram.write_block dram ~addr:0 (Array.init 10 Fun.id);
  let fifo = Fifo.create ~name:"f" ~capacity:2 in
  let dma = Dma.create_mm2s ~name:"m" ~dram ~dest:fifo in
  Dma.start_mm2s dma ~addr:0 ~len:10;
  (* Never drain: DMA must stall, not overflow. *)
  for _ = 1 to 1000 do
    Dma.step_mm2s dma;
    Fifo.commit fifo
  done;
  check Alcotest.bool "not idle (stalled)" false (Dma.mm2s_idle dma);
  check Alcotest.int "fifo at capacity" 2 (Fifo.occupancy fifo);
  check Alcotest.bool "conserved" true (Fifo.conserved fifo)

let test_s2mm_writes_dram () =
  let dram = Dram.create ~words:256 () in
  let fifo = Fifo.create ~name:"f" ~capacity:64 in
  let dma = Dma.create_s2mm ~name:"s" ~dram ~src:fifo in
  (* supply all beats *)
  List.iter (fun v -> Fifo.push fifo v) (List.init 20 (fun i -> 100 + i));
  Fifo.commit fifo;
  Dma.start_s2mm dma ~addr:32 ~len:20;
  let guard = ref 0 in
  while (not (Dma.s2mm_idle dma)) && !guard < 100_000 do
    Dma.step_s2mm dma;
    Fifo.commit fifo;
    incr guard
  done;
  check (Alcotest.list Alcotest.int) "landed in DRAM"
    (List.init 20 (fun i -> 100 + i))
    (Array.to_list (Dram.read_block dram ~addr:32 ~len:20))

let test_dma_double_start_rejected () =
  let dram = Dram.create ~words:64 () in
  let fifo = Fifo.create ~name:"f" ~capacity:4 in
  let dma = Dma.create_mm2s ~name:"m" ~dram ~dest:fifo in
  Dma.start_mm2s dma ~addr:0 ~len:8;
  Alcotest.check_raises "busy" (Invalid_argument "m: MM2S already busy") (fun () ->
      Dma.start_mm2s dma ~addr:0 ~len:8)

let test_dma_zero_length_is_noop () =
  let dram = Dram.create ~words:64 () in
  let fifo = Fifo.create ~name:"f" ~capacity:4 in
  let dma = Dma.create_mm2s ~name:"m" ~dram ~dest:fifo in
  Dma.start_mm2s dma ~addr:0 ~len:0;
  check Alcotest.bool "immediately idle" true (Dma.mm2s_idle dma)

let test_dma_negative_length_rejected () =
  let dram = Dram.create ~words:64 () in
  let dest = Fifo.create ~name:"f" ~capacity:4 in
  let src = Fifo.create ~name:"g" ~capacity:4 in
  let m = Dma.create_mm2s ~name:"m" ~dram ~dest in
  let s = Dma.create_s2mm ~name:"s" ~dram ~src in
  Alcotest.check_raises "mm2s negative" (Invalid_argument "m: negative length") (fun () ->
      Dma.start_mm2s m ~addr:0 ~len:(-1));
  Alcotest.check_raises "s2mm negative" (Invalid_argument "s: negative length") (fun () ->
      Dma.start_s2mm s ~addr:0 ~len:(-4))

let test_dma_s2mm_double_start_rejected () =
  let dram = Dram.create ~words:64 () in
  let src = Fifo.create ~name:"g" ~capacity:4 in
  let s = Dma.create_s2mm ~name:"s" ~dram ~src in
  Dma.start_s2mm s ~addr:0 ~len:8;
  Alcotest.check_raises "busy" (Invalid_argument "s: S2MM already busy") (fun () ->
      Dma.start_s2mm s ~addr:0 ~len:8)

let test_dma_error_injection () =
  let dram = Dram.create ~words:64 () in
  let dest = Fifo.create ~name:"f" ~capacity:16 in
  let dma = Dma.create_mm2s ~name:"m" ~dram ~dest in
  Dma.start_mm2s dma ~addr:0 ~len:8;
  Dma.inject_error_mm2s dma;
  check Alcotest.bool "aborted to idle" true (Dma.mm2s_idle dma);
  check Alcotest.bool "error latched" false (Dma.mm2s_ok dma);
  (* Per-descriptor status: programming the next descriptor clears it. *)
  Dma.start_mm2s dma ~addr:0 ~len:0;
  check Alcotest.bool "cleared by next start" true (Dma.mm2s_ok dma)

let test_dma_stall_injection () =
  let dram = Dram.create ~words:64 () in
  Dram.write_block dram ~addr:0 [| 1; 2; 3; 4 |];
  let dest = Fifo.create ~name:"f" ~capacity:16 in
  let dma = Dma.create_mm2s ~name:"m" ~dram ~dest in
  Dma.start_mm2s dma ~addr:0 ~len:4;
  let run_to_idle () =
    let n = ref 0 in
    while not (Dma.mm2s_idle dma) do
      Dma.step_mm2s dma;
      Fifo.commit dest;
      incr n
    done;
    !n
  in
  let baseline = run_to_idle () in
  let dma2 = Dma.create_mm2s ~name:"m2" ~dram ~dest in
  Dma.start_mm2s dma2 ~addr:0 ~len:4;
  Dma.inject_stall_mm2s dma2 ~cycles:25;
  let n = ref 0 in
  while not (Dma.mm2s_idle dma2) do
    Dma.step_mm2s dma2;
    Fifo.commit dest;
    incr n
  done;
  check Alcotest.int "stall delays completion by its length" (baseline + 25) !n

let test_fifo_stuck_injection () =
  let f = Fifo.create ~name:"f" ~capacity:4 in
  Fifo.inject_stuck f ~cycles:2;
  check Alcotest.bool "stuck refuses push" false (Fifo.can_push f);
  Fifo.commit f;
  check Alcotest.bool "still stuck" false (Fifo.can_push f);
  Fifo.commit f;
  check Alcotest.bool "self-heals after duration" true (Fifo.can_push f);
  Fifo.push f 1;
  check Alcotest.bool "conserved" true (Fifo.conserved f)

let test_fifo_flush_accounts_drops () =
  let f = Fifo.create ~name:"f" ~capacity:8 in
  List.iter (Fifo.push f) [ 1; 2; 3 ];
  Fifo.commit f;
  Fifo.push f 4 (* staged, not yet visible *);
  Fifo.flush f;
  check Alcotest.int "empty after flush" 0 (Fifo.occupancy f);
  check Alcotest.int "drops accounted" 4 f.Fifo.total_dropped;
  check Alcotest.bool "conserved" true (Fifo.conserved f)

let test_lite_slave_error_injection () =
  let ic = Lite.create_interconnect () in
  let rf = Lite.attach ic ~owner:"acc" ~size:0x100 in
  Lite.rf_poke rf ~offset:0x10 7;
  check Alcotest.bool "unknown owner rejected" false
    (Lite.inject_slave_error ic ~owner:"nope" ~count:1);
  check Alcotest.bool "known owner accepted" true
    (Lite.inject_slave_error ic ~owner:"acc" ~count:2);
  let addr = Lite.gp0_base + 0x10 in
  (match Lite.bus_read ic addr with
  | Error (Lite.Slave_error a) -> check Alcotest.int "slverr address" addr a
  | _ -> Alcotest.fail "expected SLVERR");
  (match Lite.bus_write ic addr 9 with
  | Error (Lite.Slave_error _) -> ()
  | _ -> Alcotest.fail "expected second SLVERR");
  (* Budget exhausted: the slave answers normally again. *)
  match Lite.bus_read ic addr with
  | Ok (v, _) -> check Alcotest.int "recovered read" 7 v
  | Error _ -> Alcotest.fail "expected clean read after budget drained"

let test_dma_resource_cost_scales () =
  let l1, f1, b1 = Dma.resource_cost ~channels:1 in
  let l2, f2, b2 = Dma.resource_cost ~channels:2 in
  check Alcotest.bool "lut grows" true (l2 > l1);
  check Alcotest.bool "ff grows" true (f2 > f1);
  check Alcotest.bool "bram grows" true (b2 > b1)

(* Property: MM2S then S2MM round-trip equals memcpy for random data. *)
let prop_dma_roundtrip_is_memcpy =
  QCheck.Test.make ~name:"MM2S->S2MM roundtrip = memcpy" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 70) (int_bound 0xFFFFFF))
    (fun data ->
      let n = List.length data in
      let dram = Dram.create ~words:1024 () in
      Dram.write_block dram ~addr:0 (Array.of_list data);
      let fifo = Fifo.create ~name:"pipe" ~capacity:16 in
      let src = Dma.create_mm2s ~name:"m" ~dram ~dest:fifo in
      let dst = Dma.create_s2mm ~name:"s" ~dram ~src:fifo in
      Dma.start_mm2s src ~addr:0 ~len:n;
      Dma.start_s2mm dst ~addr:512 ~len:n;
      let guard = ref 0 in
      while ((not (Dma.mm2s_idle src)) || not (Dma.s2mm_idle dst)) && !guard < 200_000 do
        Dma.step_mm2s src;
        Dma.step_s2mm dst;
        Fifo.commit fifo;
        incr guard
      done;
      Dma.s2mm_idle dst
      && Array.to_list (Dram.read_block dram ~addr:512 ~len:n) = data)

(* ------------------------------------------------------------------ *)
(* Protocol checker                                                    *)
(* ------------------------------------------------------------------ *)

let test_rules_clean_handshake () =
  let m = Stream_rules.create "ch" in
  Stream_rules.observe m ~tvalid:true ~tdata:5 ~tready:false;
  Stream_rules.observe m ~tvalid:true ~tdata:5 ~tready:true;
  check (Alcotest.list Alcotest.bool) "no violations" []
    (List.map (fun _ -> true) (Stream_rules.violations m));
  check Alcotest.int "one handshake" 1 (Stream_rules.handshakes m)

let test_rules_data_change_detected () =
  let m = Stream_rules.create "ch" in
  Stream_rules.observe m ~tvalid:true ~tdata:5 ~tready:false;
  Stream_rules.observe m ~tvalid:true ~tdata:6 ~tready:true;
  check Alcotest.bool "violation" true
    (List.exists
       (function Stream_rules.Data_changed _ -> true | _ -> false)
       (Stream_rules.violations m))

let test_rules_valid_drop_detected () =
  let m = Stream_rules.create "ch" in
  Stream_rules.observe m ~tvalid:true ~tdata:5 ~tready:false;
  Stream_rules.observe m ~tvalid:false ~tdata:0 ~tready:false;
  check Alcotest.bool "violation" true
    (List.exists
       (function Stream_rules.Valid_dropped _ -> true | _ -> false)
       (Stream_rules.violations m))

let suite =
  [
    ("fifo registered propagation", `Quick, test_fifo_registered_propagation);
    ("fifo capacity includes staging", `Quick, test_fifo_capacity);
    ("fifo order", `Quick, test_fifo_order);
    ("fifo guards", `Quick, test_fifo_guards);
    ("fifo high-water", `Quick, test_fifo_high_water);
    ("fifo bram cost", `Quick, test_fifo_bram_cost);
    ("dram read/write", `Quick, test_dram_rw);
    ("dram block ops", `Quick, test_dram_block_ops);
    ("dram bounds", `Quick, test_dram_bounds);
    ("dram burst cycles", `Quick, test_dram_burst_cycles);
    ("lite attach/decode", `Quick, test_lite_attach_and_decode);
    ("lite decode error", `Quick, test_lite_decode_error);
    ("lite bus read/write", `Quick, test_lite_bus_rw);
    ("lite peek is free", `Quick, test_lite_peek_does_not_count);
    ("lite address map", `Quick, test_lite_address_map);
    ("mm2s streams a buffer", `Quick, test_mm2s_streams_buffer);
    ("mm2s respects backpressure", `Quick, test_mm2s_respects_backpressure);
    ("s2mm writes dram", `Quick, test_s2mm_writes_dram);
    ("dma double start rejected", `Quick, test_dma_double_start_rejected);
    ("dma s2mm double start rejected", `Quick, test_dma_s2mm_double_start_rejected);
    ("dma negative length rejected", `Quick, test_dma_negative_length_rejected);
    ("dma zero-length noop", `Quick, test_dma_zero_length_is_noop);
    ("dma error injection", `Quick, test_dma_error_injection);
    ("dma stall injection", `Quick, test_dma_stall_injection);
    ("fifo stuck-full injection", `Quick, test_fifo_stuck_injection);
    ("fifo flush accounts drops", `Quick, test_fifo_flush_accounts_drops);
    ("lite slave error injection", `Quick, test_lite_slave_error_injection);
    ("dma resource cost scales", `Quick, test_dma_resource_cost_scales);
    ("rules: clean handshake", `Quick, test_rules_clean_handshake);
    ("rules: data change", `Quick, test_rules_data_change_detected);
    ("rules: valid drop", `Quick, test_rules_valid_drop_detected);
    qtest prop_fifo_conservation;
    qtest prop_dma_roundtrip_is_memcpy;
  ]

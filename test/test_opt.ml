(* Tests for the CFG optimizer: folding, propagation, dead-code
   elimination, unreachable-block pruning — and semantic preservation,
   both against the interpreter and through full HLS to RTL. *)

open Soc_kernel
open Soc_kernel.Ast.Build

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let kernel ?(ports = []) ?(locals = []) ?(arrays = []) body =
  { Ast.kname = "k"; ports; locals; arrays; body }

let optimized k =
  let cfg = Cfg.of_kernel k in
  let stats = Opt.run cfg in
  (cfg, stats)

let run_cfg ?(scalars = []) ?(streams = []) cfg =
  let r = Interp.run ~scalars ~streams cfg in
  r.Interp.out_scalars

(* ------------------------------------------------------------------ *)
(* Individual transformations                                          *)
(* ------------------------------------------------------------------ *)

let test_constant_folding () =
  let k =
    kernel ~ports:[ out_scalar "r" Ty.U32 ]
      [ set "r" ((int 6 *: int 7) +: (int 10 -: int 10)) ]
  in
  let cfg, stats = optimized k in
  (* Everything folds into a single constant move. *)
  check Alcotest.int "one instruction left" 1 stats.Opt.after;
  check Alcotest.int "result" 42 (List.assoc "r" (run_cfg cfg))

let test_algebraic_identities () =
  let k =
    kernel
      ~ports:[ in_scalar "x" Ty.U32; out_scalar "r" Ty.U32 ]
      [ set "r" ((v "x" *: int 1) +: int 0) ]
  in
  let _, stats = optimized k in
  (* mul and add both disappear: r := x remains. *)
  check Alcotest.int "identities removed" 1 stats.Opt.after

let test_mul_by_zero () =
  let k =
    kernel
      ~ports:[ in_scalar "x" Ty.U32; out_scalar "r" Ty.U32 ]
      [ set "r" ((v "x" *: int 0) |: int 5) ]
  in
  let cfg, _ = optimized k in
  check Alcotest.int "folded through" 5 (List.assoc "r" (run_cfg ~scalars:[ ("x", 999) ] cfg))

let test_sub_self () =
  let k =
    kernel
      ~ports:[ in_scalar "x" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("t", Ty.U32) ]
      [ set "t" (v "x"); set "r" (Ast.Bin (Ast.Sub, Ast.Var "t", Ast.Var "t")) ]
  in
  let cfg, _ = optimized k in
  check Alcotest.int "x - x = 0" 0 (List.assoc "r" (run_cfg ~scalars:[ ("x", 123) ] cfg))

let test_dead_code_removed () =
  let k =
    kernel
      ~ports:[ in_scalar "x" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("dead1", Ty.U32); ("dead2", Ty.U32) ]
      [
        set "dead1" (v "x" *: v "x");
        set "dead2" (v "dead1" +: int 1); (* transitively dead *)
        set "r" (v "x" +: int 1);
      ]
  in
  let _, stats = optimized k in
  check Alcotest.int "only the live chain remains" 2 stats.Opt.after

let test_pop_preserved_even_if_dead () =
  (* Consuming a beat is observable; the pop must survive DCE. *)
  let k =
    kernel
      ~ports:[ in_stream "s" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("unused", Ty.U32) ]
      [ pop "unused" "s"; set "r" (int 1) ]
  in
  let cfg, _ = optimized k in
  let result = Interp.run ~streams:[ ("s", [ 9; 8 ]) ] cfg in
  check Alcotest.int "one beat consumed" 1
    (Interp.Channels.length result.Interp.channels "s")

let test_stores_preserved () =
  let k =
    kernel ~arrays:[ Ast.Build.array "a" Ty.U32 4 ] ~ports:[ out_scalar "r" Ty.U32 ]
      [ store "a" (int 0) (int 5); set "r" (load "a" (int 0)) ]
  in
  let cfg, _ = optimized k in
  check Alcotest.int "store visible through load" 5 (List.assoc "r" (run_cfg cfg))

let test_branch_folding_prunes () =
  let k =
    kernel ~ports:[ out_scalar "r" Ty.U32 ]
      [ if_ (int 1) [ set "r" (int 10) ] [ set "r" (int 20) ] ]
  in
  let cfg, _ = optimized k in
  check Alcotest.int "then taken" 10 (List.assoc "r" (run_cfg cfg));
  (* entry must now jump directly (no Branch left anywhere) *)
  let has_branch =
    Array.exists
      (fun (b : Cfg.block) -> match b.Cfg.term with Cfg.Branch _ -> true | _ -> false)
      cfg.Cfg.blocks
  in
  check Alcotest.bool "branch folded to goto" false has_branch;
  (* the dead else-branch contributes no instructions *)
  let total = Cfg.instr_count cfg in
  check Alcotest.bool "dead arm pruned" true (total <= 2)

let test_copy_propagation_local_only () =
  (* A variable redefined in a loop must not be propagated stalely. *)
  let k =
    kernel
      ~ports:[ in_scalar "n" Ty.U32; out_scalar "r" Ty.U32 ]
      ~locals:[ ("i", Ty.U32); ("acc", Ty.U32); ("c", Ty.U32) ]
      [
        set "c" (int 2);
        set "acc" (int 0);
        for_ "i" ~from:(int 0) ~below:(v "n")
          [ set "acc" (v "acc" +: v "c"); set "c" (v "c" +: int 1) ];
        set "r" (v "acc");
      ]
  in
  let cfg, _ = optimized k in
  (* 2 + 3 + 4 = 9 for n = 3 *)
  check Alcotest.int "loop-carried value correct" 9
    (List.assoc "r" (run_cfg ~scalars:[ ("n", 3) ] cfg))

(* ------------------------------------------------------------------ *)
(* Effect on generated hardware                                        *)
(* ------------------------------------------------------------------ *)

let test_opt_shrinks_hardware () =
  (* grayScale has foldable shifts/masks; optimized synthesis must not be
     larger and must still agree with the interpreter. *)
  let k = Soc_apps.Otsu.gray_scale_kernel ~pixels:16 in
  let on = Soc_hls.Engine.synthesize ~config:Soc_hls.Engine.default_config k in
  let off =
    Soc_hls.Engine.synthesize
      ~config:{ Soc_hls.Engine.default_config with Soc_hls.Engine.optimize = false } k
  in
  check Alcotest.bool "no larger with optimizer" true
    (on.Soc_hls.Engine.report.Soc_hls.Report.resources.Soc_hls.Report.lut
    <= off.Soc_hls.Engine.report.Soc_hls.Report.resources.Soc_hls.Report.lut)

let test_opt_preserves_latency_or_better () =
  let k = Soc_apps.Otsu.histogram_kernel ~pixels:32 in
  let rng = Soc_util.Rng.create 8 in
  let pixels = List.init 32 (fun _ -> Soc_util.Rng.int rng 256) in
  let run optimize =
    let config = { Soc_hls.Engine.default_config with Soc_hls.Engine.optimize } in
    let accel = Soc_hls.Engine.synthesize ~config k in
    Soc_hls.Testbench.run ~streams:[ ("grayScaleImage", pixels) ] accel.Soc_hls.Engine.fsmd
  in
  let fast = run true and slow = run false in
  check (Alcotest.list Alcotest.int) "same histogram"
    (List.assoc "histogram" slow.Soc_hls.Testbench.out_streams)
    (List.assoc "histogram" fast.Soc_hls.Testbench.out_streams);
  check Alcotest.bool "no slower" true
    (fast.Soc_hls.Testbench.cycles <= slow.Soc_hls.Testbench.cycles)

(* ------------------------------------------------------------------ *)
(* Properties: semantics preserved on random kernels                   *)
(* ------------------------------------------------------------------ *)

(* Reuse the expression-heavy generator: straight-line code with loads,
   stores, division, then compare unoptimized vs optimized interpreter
   results. *)
let random_program =
  QCheck.Gen.(
    let var i = Printf.sprintf "v%d" (i mod 4) in
    let* n = int_range 1 30 in
    let* ops =
      flatten_l
        (List.init n (fun i ->
             let* kind = int_bound 6 in
             let* a = int_bound 3 in
             let* b = int_bound 3 in
             let* c = int_bound 64 in
             let dst = var i in
             return
               (match kind with
               | 0 -> set dst (v (var a) +: Ast.Int c)
               | 1 -> set dst (v (var a) *: Ast.Int (c land 7))
               | 2 -> set dst (v (var a) -: v (var b))
               | 3 -> set dst (v (var a) *: Ast.Int 0)
               | 4 -> set dst (v (var a) |: Ast.Int 0)
               | 5 -> store "arr" (v (var a) &: Ast.Int 7) (v (var b))
               | _ -> set dst (load "arr" (v (var b) &: Ast.Int 7)))))
    in
    let* seed = int_bound 100000 in
    return
      ( kernel
          ~ports:[ in_scalar "seed" Ty.U32; out_scalar "out" Ty.U32 ]
          ~locals:[ ("v0", Ty.U32); ("v1", Ty.U32); ("v2", Ty.U32); ("v3", Ty.U32) ]
          ~arrays:[ Ast.Build.array "arr" Ty.U32 8 ]
          ((set "v0" (v "seed") :: ops)
          @ [ set "out" (v "v0" +: v "v1" +: v "v2" +: v "v3") ]),
        seed ))

let prop_opt_preserves_interpreter =
  QCheck.Test.make ~name:"optimizer preserves interpreter semantics" ~count:100
    (QCheck.make random_program) (fun (k, seed) ->
      let plain = Interp.run ~scalars:[ ("seed", seed) ] (Cfg.of_kernel k) in
      let cfg = Cfg.of_kernel k in
      ignore (Opt.run cfg);
      let opt = Interp.run ~scalars:[ ("seed", seed) ] cfg in
      plain.Interp.out_scalars = opt.Interp.out_scalars)

let prop_opt_never_grows =
  QCheck.Test.make ~name:"optimizer never adds instructions" ~count:100
    (QCheck.make random_program) (fun (k, _) ->
      let cfg = Cfg.of_kernel k in
      let stats = Opt.run cfg in
      stats.Opt.after <= stats.Opt.before)

let prop_opt_idempotent =
  QCheck.Test.make ~name:"optimizer is idempotent" ~count:50
    (QCheck.make random_program) (fun (k, _) ->
      let cfg = Cfg.of_kernel k in
      ignore (Opt.run cfg);
      let s2 = Opt.run cfg in
      s2.Opt.after = s2.Opt.before)

let prop_opt_preserves_rtl =
  QCheck.Test.make ~name:"optimized RTL = unoptimized interpreter" ~count:25
    (QCheck.make random_program) (fun (k, seed) ->
      let plain = Interp.run ~scalars:[ ("seed", seed) ] (Cfg.of_kernel k) in
      let accel = Soc_hls.Engine.synthesize k in
      let rt = Soc_hls.Testbench.run ~scalars:[ ("seed", seed) ] accel.Soc_hls.Engine.fsmd in
      List.assoc "out" plain.Interp.out_scalars
      = List.assoc "out" rt.Soc_hls.Testbench.out_scalars)

let suite =
  [
    ("constant folding", `Quick, test_constant_folding);
    ("algebraic identities", `Quick, test_algebraic_identities);
    ("mul by zero", `Quick, test_mul_by_zero);
    ("x - x", `Quick, test_sub_self);
    ("dead code removed", `Quick, test_dead_code_removed);
    ("dead pop preserved", `Quick, test_pop_preserved_even_if_dead);
    ("stores preserved", `Quick, test_stores_preserved);
    ("branch folding + pruning", `Quick, test_branch_folding_prunes);
    ("propagation is loop-safe", `Quick, test_copy_propagation_local_only);
    ("optimizer shrinks hardware", `Quick, test_opt_shrinks_hardware);
    ("optimizer keeps/improves latency", `Quick, test_opt_preserves_latency_or_better);
    qtest prop_opt_preserves_interpreter;
    qtest prop_opt_never_grows;
    qtest prop_opt_idempotent;
    qtest prop_opt_preserves_rtl;
  ]

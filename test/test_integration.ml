(* End-to-end integration tests: DSL source -> flow -> simulated platform
   -> bit-exact application results. These are the "boot the board and run
   it" checks of the reproduction. *)

open Soc_apps

let check = Alcotest.check

let width = 16
let height = 16

let golden () = Otsu_runner.golden ~width ~height ()

(* ------------------------------------------------------------------ *)
(* Case study: all four architectures match the golden model           *)
(* ------------------------------------------------------------------ *)

let arch_test arch () =
  let g, gthr = golden () in
  let r = Otsu_runner.run_arch ~width ~height arch in
  check Alcotest.bool "bit-exact segmented image" true (Image.equal r.Otsu_runner.output g);
  check Alcotest.int "threshold" gthr r.Otsu_runner.threshold;
  check Alcotest.bool "nonzero time" true (r.Otsu_runner.cycles > 0)

let test_sw_baseline_matches () =
  let g, _ = golden () in
  let r = Otsu_runner.run_software_only ~width ~height () in
  check Alcotest.bool "software baseline matches" true
    (Image.equal r.Otsu_runner.output g)

let test_archs_have_expected_core_counts () =
  List.iter
    (fun (arch, n) ->
      let r = Otsu_runner.run_arch ~width ~height arch in
      match r.Otsu_runner.build with
      | Some b -> check Alcotest.int (Graphs.arch_name arch ^ " cores") n (List.length b.Soc_core.Flow.impls)
      | None -> Alcotest.fail "build missing")
    [ (Graphs.Arch1, 1); (Graphs.Arch2, 1); (Graphs.Arch3, 2); (Graphs.Arch4, 4) ]

let test_resource_shape_table2 () =
  (* Table II shape: LUT monotone across Arch1 < Arch2 <= Arch3 < Arch4;
     DSPs appear only with otsuMethod/grayScale. *)
  let res arch =
    match (Otsu_runner.run_arch ~width ~height arch).Otsu_runner.build with
    | Some b -> b.Soc_core.Flow.resources
    | None -> Alcotest.fail "no build"
  in
  let r1 = res Graphs.Arch1
  and r2 = res Graphs.Arch2
  and r3 = res Graphs.Arch3
  and r4 = res Graphs.Arch4 in
  check Alcotest.bool "lut: arch1 < arch2" true Soc_hls.Report.(r1.lut < r2.lut);
  check Alcotest.bool "lut: arch2 <= arch3" true Soc_hls.Report.(r2.lut <= r3.lut);
  check Alcotest.bool "lut: arch3 < arch4" true Soc_hls.Report.(r3.lut < r4.lut);
  check Alcotest.int "arch1 has no dsp" 0 Soc_hls.Report.(r1.dsp);
  check Alcotest.bool "arch2 uses dsp" true Soc_hls.Report.(r2.dsp > 0);
  check Alcotest.bool "arch4 uses most dsp" true Soc_hls.Report.(r4.dsp >= r3.dsp)

(* ------------------------------------------------------------------ *)
(* Fig. 4 system end-to-end                                            *)
(* ------------------------------------------------------------------ *)

let test_fig4_system_runs () =
  let w = 12 and h = 10 in
  let n = w * h in
  let spec = Graphs.fig4_spec in
  let build = Soc_core.Flow.build spec ~kernels:(Graphs.fig4_kernels ~width:w ~height:h) in
  let live = Soc_core.Flow.instantiate ~fifo_depth:(n + 8) build in
  let exec = live.Soc_core.Flow.exec in
  let module Exec = Soc_platform.Executive in
  (* AXI-Lite path: ADD and MUL invoked over the bus. *)
  Exec.set_arg exec ~accel:"ADD" ~port:"A" 1200;
  Exec.set_arg exec ~accel:"ADD" ~port:"B" 34;
  Exec.start_accel exec "ADD";
  Exec.wait_accel exec "ADD";
  check Alcotest.int "ADD over AXI-Lite" 1234 (Exec.get_arg exec ~accel:"ADD" ~port:"return_");
  Exec.set_arg exec ~accel:"MUL" ~port:"A" 25;
  Exec.set_arg exec ~accel:"MUL" ~port:"B" 4;
  Exec.start_accel exec "MUL";
  Exec.wait_accel exec "MUL";
  check Alcotest.int "MUL over AXI-Lite" 100 (Exec.get_arg exec ~accel:"MUL" ~port:"return_");
  (* AXI-Stream path: image through GAUSS -> EDGE via DMA. *)
  let rng = Soc_util.Rng.create 17 in
  let input = Array.init n (fun _ -> Soc_util.Rng.int rng 256) in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 input;
  Exec.start_accel exec "GAUSS";
  Exec.start_accel exec "EDGE";
  Exec.start_read_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"EDGE" ~port:"out")
    ~addr:4096 ~len:n;
  Exec.start_write_dma exec
    ~channel:(Soc_core.Flow.channel live ~node:"GAUSS" ~port:"in")
    ~addr:0 ~len:n;
  Exec.run_phase exec ~accels:[ "GAUSS"; "EDGE" ];
  let out = Soc_axi.Dram.read_block (Exec.dram exec) ~addr:4096 ~len:n in
  let expected =
    Filters.Golden.edge ~width:w ~height:h (Filters.Golden.gauss ~width:w ~height:h input)
  in
  check (Alcotest.list Alcotest.int) "gauss->edge pipeline" (Array.to_list expected)
    (Array.to_list out);
  check (Alcotest.list Alcotest.string) "no protocol violations" []
    (List.map
       (Format.asprintf "%a" Soc_axi.Stream_rules.pp_violation)
       (Soc_platform.System.protocol_violations live.Soc_core.Flow.system))

(* ------------------------------------------------------------------ *)
(* Listing-4 source all the way to hardware                            *)
(* ------------------------------------------------------------------ *)

let test_listing4_text_to_simulation () =
  (* Parse the paper's Listing 4 text, attach kernels, build, instantiate,
     run: the complete "execute the DSL" story on the external syntax. *)
  let g, _ = golden () in
  let r = Otsu_runner.run_arch ~width ~height Graphs.Arch4 in
  (match r.Otsu_runner.build with
  | Some b ->
    check Alcotest.string "spec came from the listing" "otsu"
      b.Soc_core.Flow.spec.Soc_core.Spec.design_name
  | None -> Alcotest.fail "no build");
  check Alcotest.bool "output matches golden" true (Image.equal r.Otsu_runner.output g)

(* Determinism: the whole co-simulation is reproducible. *)
let test_full_run_deterministic () =
  let r1 = Otsu_runner.run_arch ~width ~height Graphs.Arch4 in
  let r2 = Otsu_runner.run_arch ~width ~height Graphs.Arch4 in
  check Alcotest.int "same cycle count" r1.Otsu_runner.cycles r2.Otsu_runner.cycles;
  check Alcotest.bool "same image" true
    (Image.equal r1.Otsu_runner.output r2.Otsu_runner.output)

(* Different image content still matches golden (data independence). *)
let test_other_seeds () =
  List.iter
    (fun seed ->
      let g, _ = Otsu_runner.golden ~width ~height ~seed () in
      let r = Otsu_runner.run_arch ~width ~height ~seed Graphs.Arch3 in
      check Alcotest.bool (Printf.sprintf "seed %d" seed) true
        (Image.equal r.Otsu_runner.output g))
    [ 1; 99; 2024 ]

(* Non-square geometry. *)
let test_non_square_image () =
  let w = 24 and h = 10 in
  let g, _ = Otsu_runner.golden ~width:w ~height:h () in
  let r = Otsu_runner.run_arch ~width:w ~height:h Graphs.Arch4 in
  check Alcotest.bool "non-square arch4" true (Image.equal r.Otsu_runner.output g)

let suite =
  [
    ("software baseline matches golden", `Quick, test_sw_baseline_matches);
    ("arch1 end-to-end", `Quick, arch_test Graphs.Arch1);
    ("arch2 end-to-end", `Quick, arch_test Graphs.Arch2);
    ("arch3 end-to-end", `Quick, arch_test Graphs.Arch3);
    ("arch4 end-to-end", `Quick, arch_test Graphs.Arch4);
    ("arch core counts", `Quick, test_archs_have_expected_core_counts);
    ("table2 resource shape", `Quick, test_resource_shape_table2);
    ("fig4 system end-to-end", `Quick, test_fig4_system_runs);
    ("listing4 text to simulation", `Quick, test_listing4_text_to_simulation);
    ("full run deterministic", `Quick, test_full_run_deterministic);
    ("other seeds", `Quick, test_other_seeds);
    ("non-square image", `Quick, test_non_square_image);
  ]

(* Tests for the fault-injection subsystem and the fault-tolerant runtime:
   plan determinism, per-fault recovery behaviour (watchdog, soft reset,
   retry, software fallback), structured failure reports, and the two
   acceptance properties — recoverable campaigns leave the Otsu output
   bit-identical to golden, and a disarmed injector leaves the timeline
   untouched. *)

module P = Soc_platform
module Exec = Soc_platform.Executive
module Fault = Soc_fault.Fault
module Chaos = Soc_apps.Chaos_runner
module Graphs = Soc_apps.Graphs
module Counters = Soc_util.Metrics.Counters

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

let inv : Fault.inventory =
  {
    Fault.accels = [ "A"; "B" ];
    mm2s = [ "m0" ];
    s2mm = [ "s0" ];
    fifos = [ "f0"; "f1" ];
    slaves = [ "A"; "B" ];
    dram_range = Some (0x100, 64);
  }

let test_campaign_deterministic () =
  let c1 = Fault.random_campaign ~seed:11 ~n:20 ~horizon:10_000 inv in
  let c2 = Fault.random_campaign ~seed:11 ~n:20 ~horizon:10_000 inv in
  let c3 = Fault.random_campaign ~seed:12 ~n:20 ~horizon:10_000 inv in
  check Alcotest.int "20 faults" 20 (List.length c1);
  check Alcotest.bool "same seed, same campaign" true (c1 = c2);
  check Alcotest.bool "different seed, different campaign" true (c1 <> c3);
  List.iter
    (fun (f : Fault.fault) ->
      check Alcotest.bool "cycle within horizon" true
        (f.Fault.at_cycle >= 0 && f.Fault.at_cycle < 10_000))
    c1

let test_campaign_default_excludes_flagged_kinds () =
  let c = Fault.random_campaign ~seed:3 ~n:200 ~horizon:5_000 inv in
  List.iter
    (fun (f : Fault.fault) ->
      (match f.Fault.kind with
      | Fault.Bit_flip _ -> Alcotest.fail "bit flip without opt-in"
      | Fault.Hang when f.Fault.duration = Fault.permanent ->
        Alcotest.fail "permanent hang without opt-in"
      | _ -> ()))
    c;
  let c = Fault.random_campaign ~seed:3 ~n:200 ~horizon:5_000 ~include_bit_flips:true inv in
  check Alcotest.bool "bit flips when opted in" true
    (List.exists
       (fun (f : Fault.fault) ->
         match f.Fault.kind with Fault.Bit_flip _ -> true | _ -> false)
       c)

let test_due_returns_each_fault_once () =
  let f at = { Fault.at_cycle = at; target = Fault.Accel "A"; kind = Fault.Hang; duration = 1 } in
  let plan = Fault.plan_of_faults [ f 30; f 10; f 20 ] in
  check Alcotest.int "sorted" 10 (List.hd (Fault.faults plan)).Fault.at_cycle;
  check Alcotest.int "none due early" 0 (List.length (Fault.due plan ~cycle:5));
  check Alcotest.int "two due" 2 (List.length (Fault.due plan ~cycle:20));
  check Alcotest.int "not re-delivered" 0 (List.length (Fault.due plan ~cycle:20));
  check Alcotest.int "last one" 1 (List.length (Fault.due plan ~cycle:1000))

(* ------------------------------------------------------------------ *)
(* Direct executive-level injection                                    *)
(* ------------------------------------------------------------------ *)

let test_bit_flip_lands_in_dram () =
  let sys = P.System.create ~dram_words:64 () in
  let exec = Exec.create sys in
  Soc_axi.Dram.write (Exec.dram exec) 5 0b1010;
  let plan =
    Fault.plan_of_faults
      [ { Fault.at_cycle = 0; target = Fault.Dram_word 5; kind = Fault.Bit_flip 0; duration = 0 } ]
  in
  Exec.set_fault_plan exec plan;
  ignore (Exec.step_fabric exec);
  check Alcotest.int "bit 0 flipped" 0b1011 (Soc_axi.Dram.read (Exec.dram exec) 5);
  check Alcotest.int "injected counted" 1 (Counters.get (Fault.counters plan) "injected")

let test_unknown_target_skipped () =
  let sys = P.System.create () in
  let exec = Exec.create sys in
  let plan =
    Fault.plan_of_faults
      [ { Fault.at_cycle = 0; target = Fault.Accel "ghost"; kind = Fault.Hang; duration = 9 } ]
  in
  Exec.set_fault_plan exec plan;
  ignore (Exec.step_fabric exec);
  check Alcotest.int "nothing injected" 0 (Counters.get (Fault.counters plan) "injected");
  check Alcotest.int "skipped counted" 1 (Counters.get (Fault.counters plan) "skipped");
  match Fault.events plan with
  | [ Fault.Skipped { reason; _ } ] ->
    check Alcotest.string "reason" "no such accelerator" reason
  | _ -> Alcotest.fail "expected a single Skipped event"

let test_slverr_recovery_via_retry () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"ADD" (Soc_hls.Engine.synthesize Soc_apps.Filters.add_kernel).Soc_hls.Engine.fsmd);
  let exec = Exec.create sys in
  (* Two SLVERRs to burn: attempt 1 and attempt 2 each die on a bus access,
     attempt 3 runs clean. *)
  let plan =
    Fault.plan_of_faults
      [ { Fault.at_cycle = 0; target = Fault.Lite_slave "ADD"; kind = Fault.Slave_error; duration = 2 } ]
  in
  Exec.set_fault_plan exec plan;
  (* Land the fault before the task starts. *)
  ignore (Exec.step_fabric exec);
  let report =
    Exec.run_task_resilient exec ~task:"add-call" ~timeout:50_000
      (fun () ->
        Exec.set_arg exec ~accel:"ADD" ~port:"A" 40;
        Exec.set_arg exec ~accel:"ADD" ~port:"B" 2;
        Exec.start_accel exec "ADD";
        Exec.wait_accel exec "ADD")
  in
  check Alcotest.int "third attempt succeeds" 3 report.Exec.attempts_made;
  check Alcotest.bool "hardware outcome" true (report.Exec.outcome = Exec.Hardware);
  List.iter
    (fun (f : Exec.failure) ->
      check Alcotest.bool "cause names SLVERR" true
        (String.length f.Exec.cause > 0
        && List.exists
             (fun i -> i + 6 <= String.length f.Exec.cause && String.sub f.Exec.cause i 6 = "SLVERR")
             (List.init (String.length f.Exec.cause) Fun.id)))
    report.Exec.failures;
  check Alcotest.int "result survives recovery" 42
    (Exec.get_arg exec ~accel:"ADD" ~port:"return_");
  check Alcotest.int "recovered counted" 1 (Counters.get (Fault.counters plan) "recovered")

(* ------------------------------------------------------------------ *)
(* Chaos harness: per-fault recovery behaviour on the case study        *)
(* ------------------------------------------------------------------ *)

let mm2s_arch1 = "dma_mm2s->computeHistogram.grayScaleImage"

let test_transient_hang_self_heals () =
  let scenario =
    [ { Fault.at_cycle = 100; target = Fault.Accel "computeHistogram"; kind = Fault.Hang; duration = 300 } ]
  in
  let o = Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario Graphs.Arch1 in
  check Alcotest.int "one attempt" 1 o.Chaos.report.Exec.attempts_made;
  check Alcotest.bool "hardware outcome" true (o.Chaos.report.Exec.outcome = Exec.Hardware);
  check Alcotest.bool "output golden" true o.Chaos.output_ok;
  check Alcotest.int "injected" 1 (Counters.get (Fault.counters o.Chaos.plan) "injected");
  check Alcotest.int "no detections" 0 (Counters.get (Fault.counters o.Chaos.plan) "detected")

let test_permanent_hang_falls_back () =
  let scenario =
    [ { Fault.at_cycle = 100; target = Fault.Accel "computeHistogram"; kind = Fault.Hang;
        duration = Fault.permanent } ]
  in
  let o = Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario ~timeout:5_000 Graphs.Arch1 in
  check Alcotest.int "all attempts burned" 3 o.Chaos.report.Exec.attempts_made;
  check Alcotest.bool "fallback outcome" true (o.Chaos.report.Exec.outcome = Exec.Fallback);
  check Alcotest.bool "output still golden" true o.Chaos.output_ok;
  let c = Fault.counters o.Chaos.plan in
  check Alcotest.int "detected" 3 (Counters.get c "detected");
  check Alcotest.int "resets" 3 (Counters.get c "resets");
  check Alcotest.int "retried" 2 (Counters.get c "retried");
  check Alcotest.int "fell back" 1 (Counters.get c "fell_back");
  check Alcotest.int "not unrecovered" 0 (Counters.get c "unrecovered");
  (* The narrative starts with the injection. *)
  match Fault.events o.Chaos.plan with
  | Fault.Injected _ :: _ -> ()
  | _ -> Alcotest.fail "expected the injection to open the event log"

let test_unrecoverable_without_fallback () =
  let hang =
    { Fault.at_cycle = 100; target = Fault.Accel "computeHistogram"; kind = Fault.Hang;
      duration = Fault.permanent }
  in
  match
    Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario:[ hang ] ~timeout:5_000
      ~fallback:false Graphs.Arch1
  with
  | _ -> Alcotest.fail "expected Unrecoverable"
  | exception Exec.Unrecoverable { task; failures; injected; _ } ->
    check Alcotest.string "task named" "computeHistogram" task;
    check Alcotest.int "attempt history complete" 3 (List.length failures);
    List.iteri
      (fun i (f : Exec.failure) ->
        check Alcotest.int "attempts numbered" (i + 1) f.Exec.attempt)
      failures;
    check Alcotest.bool "injected fault reported" true
      (List.exists (fun (f : Fault.fault) -> f.Fault.kind = Fault.Hang) injected)

let test_dma_error_detected_and_retried () =
  let scenario =
    [ { Fault.at_cycle = 60; target = Fault.Mm2s mm2s_arch1; kind = Fault.Dma_error; duration = 0 } ]
  in
  let o = Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario ~timeout:8_000 Graphs.Arch1 in
  check Alcotest.bool "needed a retry" true (o.Chaos.report.Exec.attempts_made >= 2);
  check Alcotest.bool "hardware outcome" true (o.Chaos.report.Exec.outcome = Exec.Hardware);
  check Alcotest.bool "output golden" true o.Chaos.output_ok;
  check Alcotest.int "recovered counted" 1
    (Counters.get (Fault.counters o.Chaos.plan) "recovered")

let test_spurious_done_caught () =
  let scenario =
    [ { Fault.at_cycle = 40; target = Fault.Accel "computeHistogram";
        kind = Fault.Spurious_done; duration = Fault.permanent } ]
  in
  let o = Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario ~timeout:5_000 Graphs.Arch1 in
  (* A permanently lying core cannot complete in hardware: the runtime must
     degrade gracefully and the output must stay golden. *)
  check Alcotest.bool "fallback outcome" true (o.Chaos.report.Exec.outcome = Exec.Fallback);
  check Alcotest.bool "output golden" true o.Chaos.output_ok

let test_fifo_stuck_delays_only () =
  let clean = Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario:[] Graphs.Arch1 in
  (* Long enough that the producer stall cannot hide in pipeline slack. *)
  let scenario =
    [ { Fault.at_cycle = 20; target = Fault.Fifo mm2s_arch1; kind = Fault.Fifo_stuck; duration = 5_000 } ]
  in
  let o = Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario Graphs.Arch1 in
  check Alcotest.int "one attempt" 1 o.Chaos.report.Exec.attempts_made;
  check Alcotest.bool "output golden" true o.Chaos.output_ok;
  check Alcotest.bool "backpressure cost cycles" true (o.Chaos.cycles > clean.Chaos.cycles)

(* ------------------------------------------------------------------ *)
(* Acceptance properties                                               *)
(* ------------------------------------------------------------------ *)

let test_zero_overhead_when_off () =
  List.iter
    (fun arch ->
      let plain = Soc_apps.Otsu_runner.run_arch ~width:16 ~height:16 arch in
      let chaos = Chaos.run ~width:16 ~height:16 ~seed:1 ~scenario:[] arch in
      check Alcotest.int
        ("timeline unchanged under disarmed injector: " ^ Graphs.arch_name arch)
        plain.Soc_apps.Otsu_runner.cycles chaos.Chaos.cycles;
      check Alcotest.bool "golden" true chaos.Chaos.output_ok)
    Graphs.all_archs

let prop_recoverable_campaigns_end_golden =
  QCheck.Test.make ~name:"chaos: seeded recoverable campaigns end bit-identical" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let arch = List.nth Graphs.all_archs (seed mod 4) in
      let o =
        Chaos.run ~width:16 ~height:16 ~seed ~n_faults:3 ~horizon:4_000 ~timeout:30_000
          arch
      in
      o.Chaos.output_ok)

let suite =
  [
    ("campaign deterministic in seed", `Quick, test_campaign_deterministic);
    ("campaign default is recoverable", `Quick, test_campaign_default_excludes_flagged_kinds);
    ("plan delivers each fault once", `Quick, test_due_returns_each_fault_once);
    ("bit flip lands in dram", `Quick, test_bit_flip_lands_in_dram);
    ("unknown target skipped", `Quick, test_unknown_target_skipped);
    ("slverr recovered via retry", `Quick, test_slverr_recovery_via_retry);
    ("transient hang self-heals", `Quick, test_transient_hang_self_heals);
    ("permanent hang falls back", `Quick, test_permanent_hang_falls_back);
    ("unrecoverable carries attempt history", `Quick, test_unrecoverable_without_fallback);
    ("dma error detected and retried", `Quick, test_dma_error_detected_and_retried);
    ("spurious done degrades gracefully", `Quick, test_spurious_done_caught);
    ("stuck fifo delays only", `Quick, test_fifo_stuck_delays_only);
    ("zero overhead when off", `Quick, test_zero_overhead_when_off);
    qtest prop_recoverable_campaigns_end_golden;
  ]

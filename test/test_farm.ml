(* Tests for the build farm: content hashing, the artifact cache, the
   domain pool, and the batched generation flow — including the acceptance
   guarantees: a shared farm cache performs strictly fewer real HLS engine
   runs than independent builds, results are bit-identical for any worker
   count, and warm-cache builds are bit-exact replicas of cold ones. *)

module Farm = Soc_farm.Farm
module Jobgraph = Soc_farm.Jobgraph
module Cache = Soc_farm.Cache
module Chash = Soc_farm.Chash
module Pool = Soc_farm.Pool
module Trace = Soc_farm.Trace
module Flow = Soc_core.Flow
module Graphs = Soc_apps.Graphs

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let w = 16
let h = 16

let entries () =
  List.map
    (fun arch ->
      { Jobgraph.spec = Graphs.arch_spec arch;
        kernels = Graphs.arch_kernels arch ~width:w ~height:h })
    Graphs.all_archs

(* Bit-exact comparison of whole build records (specs, Tcl, address maps,
   accelerators down to the netlists, software artifacts, tool times).
   [No_sharing] so the digest depends only on structure — a cached accel
   that no longer physically shares its kernel with the node_impl must
   still compare equal. *)
let digest (b : Flow.build) =
  Digest.to_hex (Digest.string (Marshal.to_string b [ Marshal.No_sharing ]))

let digests (r : Farm.report) = List.map (fun (i, b) -> (i, digest b)) r.Farm.builds

(* ------------------------------------------------------------------ *)
(* Content hash                                                        *)
(* ------------------------------------------------------------------ *)

let cfg = Soc_hls.Engine.default_config

let test_chash_stable () =
  let k () = Soc_apps.Otsu.histogram_kernel ~pixels:64 in
  check Alcotest.string "same IR, same hash"
    (Chash.to_hex (Chash.kernel ~config:cfg (k ())))
    (Chash.to_hex (Chash.kernel ~config:cfg (k ())))

let test_chash_discriminates () =
  let k = Soc_apps.Otsu.histogram_kernel ~pixels:64 in
  let k' = Soc_apps.Otsu.histogram_kernel ~pixels:65 in
  check Alcotest.bool "different trip count, different hash" true
    (Chash.kernel ~config:cfg k <> Chash.kernel ~config:cfg k');
  let cfg' = { cfg with Soc_hls.Engine.optimize = false } in
  check Alcotest.bool "different HLS config, different hash" true
    (Chash.kernel ~config:cfg k <> Chash.kernel ~config:cfg' k)

let test_chash_name_is_not_the_key () =
  (* Two kernels with the same name but different bodies must never alias —
     the failure mode of the old name-keyed cache. *)
  let open Soc_kernel.Ast.Build in
  let mk body =
    { Soc_kernel.Ast.kname = "f";
      ports = [ in_scalar "a" Soc_kernel.Ty.U32; out_scalar "r" Soc_kernel.Ty.U32 ];
      locals = []; arrays = []; body }
  in
  check Alcotest.bool "same name, different body" true
    (Chash.kernel ~config:cfg (mk [ set "r" (v "a" +: int 1) ])
    <> Chash.kernel ~config:cfg (mk [ set "r" (v "a" +: int 2) ]))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let int_job ?(deps = []) label f : int Pool.job =
  { Pool.label; cat = "test"; deps; work = (fun _ get -> f get) }

let test_pool_dag_order () =
  (* A diamond: 0 -> {1, 2} -> 3. *)
  let jobs =
    [|
      int_job "a" (fun _ -> 1);
      int_job ~deps:[ 0 ] "b" (fun get -> (get 0) * 10);
      int_job ~deps:[ 0 ] "c" (fun get -> (get 0) + 5);
      int_job ~deps:[ 1; 2 ] "d" (fun get -> get 1 + get 2);
    |]
  in
  match Pool.run ~jobs:4 jobs with
  | [| Pool.Done 1; Pool.Done 10; Pool.Done 6; Pool.Done 16 |] -> ()
  | _ -> Alcotest.fail "unexpected outcomes"

let test_pool_deterministic_across_workers () =
  let jobs =
    Array.init 40 (fun i ->
        int_job (Printf.sprintf "j%d" i)
          ~deps:(if i = 0 then [] else [ i - 1 ])
          (fun get -> if i = 0 then 7 else (get (i - 1) * 31 + i) land 0xFFFF))
  in
  let run n = Array.map (function Pool.Done v -> v | _ -> -1) (Pool.run ~jobs:n jobs) in
  check (Alcotest.array Alcotest.int) "1 worker = 8 workers" (run 1) (run 8)

let test_pool_failure_propagates () =
  let jobs =
    [|
      int_job "ok" (fun _ -> 1);
      { Pool.label = "boom"; cat = "test"; deps = [ 0 ];
        work = (fun _ _ -> failwith "kaboom") };
      int_job ~deps:[ 1 ] "downstream" (fun get -> get 1);
      int_job ~deps:[ 0 ] "independent" (fun get -> get 0 + 1);
    |]
  in
  let o = Pool.run ~jobs:2 ~retries:0 jobs in
  (match o.(1) with
  | Pool.Failed { Pool.reason = Pool.Exception msg; attempts = 1; _ } ->
    check Alcotest.bool "message kept" true (Tstr.contains msg "kaboom")
  | _ -> Alcotest.fail "job 1 should fail");
  (match o.(2) with
  | Pool.Failed { Pool.reason = Pool.Dependency 1; _ } -> ()
  | _ -> Alcotest.fail "job 2 should be skipped on dependency failure");
  match o.(3) with
  | Pool.Done 2 -> ()
  | _ -> Alcotest.fail "independent job must still run"

let test_pool_retries_transient () =
  (* Fails twice, succeeds on the third attempt. *)
  let fault ~label ~attempt =
    if label = "flaky" && attempt < 2 then Some (Pool.Transient "simulated") else None
  in
  let trace = Trace.create () in
  let jobs = [| int_job "flaky" (fun _ -> 42) |] in
  (match Pool.run ~jobs:1 ~retries:3 ~fault ~trace jobs with
  | [| Pool.Done 42 |] -> ()
  | _ -> Alcotest.fail "should converge after retries");
  check Alcotest.int "two retries counted" 2 (List.assoc "retries" (Trace.counters trace))

let test_pool_retries_exhausted () =
  let fault ~label:_ ~attempt:_ = Some (Pool.Transient "always") in
  match Pool.run ~jobs:1 ~retries:2 ~fault [| int_job "doomed" (fun _ -> 0) |] with
  | [| Pool.Failed { Pool.attempts = 3; reason = Pool.Exception msg; _ } |] ->
    check Alcotest.bool "says retries exhausted" true (Tstr.contains msg "retries exhausted")
  | _ -> Alcotest.fail "should fail after exhausting retries"

let test_pool_hang_cancelled () =
  let fault ~label ~attempt:_ = if label = "wedged" then Some Pool.Hang else None in
  let t0 = Unix.gettimeofday () in
  match
    Pool.run ~jobs:2 ~retries:0 ~timeout:0.05 ~fault
      [| int_job "wedged" (fun _ -> 0); int_job "fine" (fun _ -> 9) |]
  with
  | [| Pool.Failed { Pool.reason = Pool.Timed_out _; _ }; Pool.Done 9 |] ->
    check Alcotest.bool "cancelled promptly (not a test-suite hang)" true
      (Unix.gettimeofday () -. t0 < 10.0)
  | _ -> Alcotest.fail "hung job must time out; healthy job must finish"

(* ------------------------------------------------------------------ *)
(* Job graph                                                           *)
(* ------------------------------------------------------------------ *)

let test_plan_dedups_kernels () =
  let g = Jobgraph.plan (entries ()) in
  (* grayScale, computeHistogram, halfProbability, segment — shared nodes
     across Arch1-4 collapse to one HLS job each. *)
  check Alcotest.int "4 distinct kernels" 4 (Jobgraph.distinct_kernels g);
  (* 4 HLS + 4 per-arch stage jobs * 4 archs *)
  check Alcotest.int "job count" (4 + (4 * 4)) (Array.length g.Jobgraph.nodes);
  (* Deps are well-formed (each dep precedes its job). *)
  Array.iteri
    (fun i (n : Jobgraph.node) ->
      List.iter (fun d -> check Alcotest.bool "dep < job" true (d < i)) n.Jobgraph.deps)
    g.Jobgraph.nodes

let test_plan_ownership_by_batch_order () =
  let g = Jobgraph.plan (entries ()) in
  Array.iter
    (fun (n : Jobgraph.node) ->
      match n.Jobgraph.task with
      | Jobgraph.Hls { kernel; owner; _ } ->
        let expected =
          match kernel.Soc_kernel.Ast.kname with
          | "computeHistogram" -> 0 (* first needed by Arch1 *)
          | "halfProbability" -> 1 (* Arch2 *)
          | "grayScale" | "segment" -> 3 (* only Arch4 *)
          | k -> Alcotest.failf "unexpected kernel %s" k
        in
        check Alcotest.int ("owner of " ^ kernel.Soc_kernel.Ast.kname) expected owner
      | _ -> ())
    g.Jobgraph.nodes

(* ------------------------------------------------------------------ *)
(* Farm batches                                                        *)
(* ------------------------------------------------------------------ *)

let test_batch_matches_serial_flow () =
  (* The farm must produce bit-identical build records to the serial
     legacy path (shared name-keyed cache, same batch order). *)
  let serial =
    let table = Hashtbl.create 8 in
    List.map
      (fun (e : Jobgraph.entry) ->
        digest (Flow.build ~hls_cache:table e.Jobgraph.spec ~kernels:e.Jobgraph.kernels))
      (entries ())
  in
  let r = Farm.build_batch ~jobs:4 (entries ()) in
  check Alcotest.int "all four built" 4 (List.length r.Farm.builds);
  check (Alcotest.list Alcotest.string) "farm = serial flow, bit-exact" serial
    (List.map snd (digests r))

let test_batch_fewer_engine_invocations () =
  (* Acceptance: Arch1-4 through a shared farm cache performs strictly
     fewer real HLS engine invocations than four independent builds. *)
  let before = Soc_hls.Engine.invocation_count () in
  List.iter
    (fun (e : Jobgraph.entry) ->
      ignore (Flow.build e.Jobgraph.spec ~kernels:e.Jobgraph.kernels))
    (entries ());
  let independent = Soc_hls.Engine.invocation_count () - before in
  let r = Farm.build_batch ~jobs:2 (entries ()) in
  check Alcotest.int "independent builds run HLS per (arch, kernel)" 8 independent;
  check Alcotest.int "farm runs HLS once per distinct kernel" 4
    r.Farm.stats.Farm.engine_invocations;
  check Alcotest.bool "strictly fewer" true
    (r.Farm.stats.Farm.engine_invocations < independent)

let test_batch_warm_cache_bit_exact () =
  let cache = Cache.create () in
  let cold = Farm.build_batch ~jobs:4 ~cache (entries ()) in
  let e0 = Soc_hls.Engine.invocation_count () in
  let warm = Farm.build_batch ~jobs:4 ~cache (entries ()) in
  check Alcotest.int "warm batch runs no engine" 0 (Soc_hls.Engine.invocation_count () - e0);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "warm = cold, bit-exact records (incl. tool-time reuse attribution)"
    (digests cold) (digests warm)

let test_batch_warm_from_disk () =
  let dir = Filename.temp_file "socfarm" ".cache" in
  Sys.remove dir;
  let cold = Farm.build_batch ~cache:(Cache.create ~disk_dir:dir ()) (entries ()) in
  (* A fresh in-memory cache, same disk layer: everything loads from disk. *)
  let cache2 = Cache.create ~disk_dir:dir () in
  let e0 = Soc_hls.Engine.invocation_count () in
  let warm = Farm.build_batch ~cache:cache2 (entries ()) in
  check Alcotest.int "no engine runs" 0 (Soc_hls.Engine.invocation_count () - e0);
  check Alcotest.bool "served from disk" true ((Cache.stats cache2).Cache.disk_hits >= 4);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "disk-warm = cold" (digests cold) (digests warm)

let test_batch_disk_version_mismatch_is_miss () =
  let dir = Filename.temp_file "socfarm" ".cache" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  (* Poison the directory with garbage entries; they must read as misses. *)
  let c = Cache.create ~disk_dir:dir () in
  ignore (Farm.build_batch ~cache:c (entries ()));
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      Out_channel.with_open_bin path (fun oc -> output_string oc "not a marshal"))
    (Sys.readdir dir);
  let c2 = Cache.create ~disk_dir:dir () in
  let r = Farm.build_batch ~cache:c2 (entries ()) in
  check Alcotest.int "all four built despite corrupt disk cache" 4 (List.length r.Farm.builds);
  check Alcotest.bool "corrupt entries were not disk hits" true
    ((Cache.stats c2).Cache.disk_hits = 0)

let prop_jobs_count_invariant =
  QCheck.Test.make ~name:"farm: --jobs N bit-identical to --jobs 1" ~count:3
    QCheck.(int_range 2 8)
    (fun n ->
      let one = Farm.build_batch ~jobs:1 (entries ()) in
      let many = Farm.build_batch ~jobs:n (entries ()) in
      digests one = digests many)

let prop_transient_faults_converge =
  QCheck.Test.make ~name:"farm: retried transient faults leave no trace in artifacts"
    ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      let baseline = digests (Farm.build_batch ~jobs:2 (entries ())) in
      let faulty =
        Farm.build_batch ~jobs:4
          ~fault:(Farm.random_faults ~seed ~rate:0.5 ~max_attempt:2 ())
          ~retries:4 (entries ())
      in
      faulty.Farm.failures = [] && digests faulty = baseline)

let test_batch_retries_exhausted_reported () =
  (* A kernel job that always faults: its architectures fail with a
     structured report; unaffected architectures still build. *)
  let fault ~label ~attempt:_ =
    if Tstr.contains label "halfProbability" then Some (Pool.Transient "injected") else None
  in
  let r = Farm.build_batch ~jobs:2 ~retries:1 ~fault (entries ()) in
  (* Arch2/3/4 need halfProbability; Arch1 does not. *)
  check (Alcotest.list Alcotest.int) "only Arch1 builds" [ 0 ]
    (List.map fst r.Farm.builds);
  check Alcotest.int "one primary failure" 1 (List.length r.Farm.failures);
  (match r.Farm.failures with
  | [ { Pool.reason = Pool.Exception msg; attempts = 2; label; _ } ] ->
    check Alcotest.bool "names the kernel" true (Tstr.contains label "halfProbability");
    check Alcotest.bool "explains" true (Tstr.contains msg "retries exhausted")
  | _ -> Alcotest.fail "expected a structured transient-failure report");
  check Alcotest.bool "dependents skipped, not failed" true (r.Farm.stats.Farm.skipped > 0)

let test_batch_hung_job_deadline () =
  (* Acceptance (satellite): a hung job is cancelled and reported; the
     rest of the batch completes. *)
  let fault ~label ~attempt:_ =
    if Tstr.contains label "halfProbability" then Some Pool.Hang else None
  in
  let r = Farm.build_batch ~jobs:2 ~retries:0 ~timeout:0.05 ~fault (entries ()) in
  check (Alcotest.list Alcotest.int) "only Arch1 builds" [ 0 ] (List.map fst r.Farm.builds);
  match r.Farm.failures with
  | [ { Pool.reason = Pool.Timed_out limit; label; _ } ] ->
    check Alcotest.bool "the hung HLS job" true (Tstr.contains label "halfProbability");
    check (Alcotest.float 1e-9) "reports the deadline" 0.05 limit
  | _ -> Alcotest.fail "expected a timeout report"

let test_batch_missing_kernel_is_structured () =
  (* A broken entry surfaces as Job_failed data, not an exception, and
     does not poison the rest of the batch. *)
  let good = entries () in
  let broken =
    { Jobgraph.spec = Graphs.arch_spec Graphs.Arch1; kernels = [] (* nothing *) }
  in
  let r = Farm.build_batch ~jobs:2 (broken :: good) in
  check (Alcotest.list Alcotest.int) "the four good entries build" [ 1; 2; 3; 4 ]
    (List.map fst r.Farm.builds);
  match r.Farm.failures with
  | [ { Pool.reason = Pool.Exception msg; label; _ } ] ->
    check Alcotest.bool "integrate job" true (Tstr.contains label "integrate");
    check Alcotest.bool "names the node" true (Tstr.contains msg "computeHistogram")
  | _ -> Alcotest.fail "expected one structured failure"

(* ------------------------------------------------------------------ *)
(* Estimate/actual reuse agreement + deprecated wrapper                 *)
(* ------------------------------------------------------------------ *)

let hls_seconds (b : Flow.build) =
  List.assoc Soc_core.Toolsim.Hls b.Flow.tool_times.Soc_core.Toolsim.seconds

let test_reuse_agreement () =
  (* In a farm batch, an arch is charged HLS time exactly when its kernels'
     HLS jobs were owned by it — modelled reuse = actual reuse. *)
  let r = Farm.build_batch (entries ()) in
  let by i = List.assoc i r.Farm.builds in
  check Alcotest.bool "Arch1 pays for computeHistogram" true (hls_seconds (by 0) > 0.0);
  check Alcotest.bool "Arch2 pays for halfProbability" true (hls_seconds (by 1) > 0.0);
  check (Alcotest.float 1e-9) "Arch3 reuses both" 0.0 (hls_seconds (by 2));
  check Alcotest.bool "Arch4 pays only for its own kernels" true
    (hls_seconds (by 3) > 0.0)

let test_deprecated_hls_cache_wrapper () =
  (* The back-compat wrapper keeps the historical semantics: shared table,
     name-keyed discounts, second build's HLS phase costs nothing. *)
  let table = Hashtbl.create 8 in
  let e = List.nth (entries ()) 0 in
  let b1 = Flow.build ~hls_cache:table e.Jobgraph.spec ~kernels:e.Jobgraph.kernels in
  let b2 = Flow.build ~hls_cache:table e.Jobgraph.spec ~kernels:e.Jobgraph.kernels in
  check Alcotest.bool "first build charged" true (hls_seconds b1 > 0.0);
  check (Alcotest.float 1e-9) "second build free" 0.0 (hls_seconds b2);
  (* ... but unlike the farm cache it still re-ran the engine. *)
  let before = Soc_hls.Engine.invocation_count () in
  ignore (Flow.build ~hls_cache:table e.Jobgraph.spec ~kernels:e.Jobgraph.kernels);
  check Alcotest.int "legacy path re-synthesizes" 1
    (Soc_hls.Engine.invocation_count () - before)

let test_flow_hls_hook () =
  (* Flow.build with the farm cache engine: second call does no HLS work. *)
  let cache = Cache.create () in
  let e = List.nth (entries ()) 3 in
  let b1 = Flow.build ~hls:(Cache.hls_engine cache) e.Jobgraph.spec ~kernels:e.Jobgraph.kernels in
  let before = Soc_hls.Engine.invocation_count () in
  let b2 = Flow.build ~hls:(Cache.hls_engine cache) e.Jobgraph.spec ~kernels:e.Jobgraph.kernels in
  check Alcotest.int "cached build runs no engine" 0
    (Soc_hls.Engine.invocation_count () - before);
  check Alcotest.string "accelerators bit-identical" (digest b1)
    (digest { b2 with Flow.tool_times = b1.Flow.tool_times })

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let test_trace_spans_and_json () =
  let r = Farm.build_batch ~jobs:2 (entries ()) in
  let spans = Trace.spans r.Farm.trace in
  check Alcotest.bool "one span per job" true
    (List.length spans = r.Farm.stats.Farm.total_jobs);
  let cats = List.sort_uniq compare (List.map (fun s -> s.Trace.cat) spans) in
  check (Alcotest.list Alcotest.string) "all phases traced"
    [ "finalize"; "hls"; "integrate"; "swgen"; "synth" ] cats;
  List.iter
    (fun (s : Trace.span) ->
      check Alcotest.bool "span has duration >= 0" true (s.Trace.t_end >= s.Trace.t_start))
    spans;
  let json = Trace.to_chrome_json r.Farm.trace in
  check Alcotest.bool "chrome trace envelope" true
    (Tstr.contains json "\"traceEvents\"" && Tstr.contains json "\"ph\":\"X\"");
  check Alcotest.bool "counters exported" true (Tstr.contains json "cache.misses");
  check Alcotest.int "cache misses counted" 4
    (List.assoc "cache.misses" (Trace.counters r.Farm.trace))

let test_report_rendering () =
  let r = Farm.build_batch ~jobs:2 (entries ()) in
  let s = Farm.render_report r in
  check Alcotest.bool "mentions every arch" true
    (List.for_all (fun a -> Tstr.contains s (Graphs.arch_name a |> String.lowercase_ascii))
       Graphs.all_archs
    || List.for_all
         (fun (_, (b : Flow.build)) -> Tstr.contains s b.Flow.spec.Soc_core.Spec.design_name)
         r.Farm.builds);
  check Alcotest.bool "mentions cache" true (Tstr.contains s "cache")

let suite =
  [
    ("chash stable", `Quick, test_chash_stable);
    ("chash discriminates IR and config", `Quick, test_chash_discriminates);
    ("chash: name is not the key", `Quick, test_chash_name_is_not_the_key);
    ("pool: diamond DAG", `Quick, test_pool_dag_order);
    ("pool: deterministic across workers", `Quick, test_pool_deterministic_across_workers);
    ("pool: failure propagates to dependents", `Quick, test_pool_failure_propagates);
    ("pool: transient retried", `Quick, test_pool_retries_transient);
    ("pool: retries exhausted", `Quick, test_pool_retries_exhausted);
    ("pool: hung job cancelled", `Quick, test_pool_hang_cancelled);
    ("plan: kernels deduplicated", `Quick, test_plan_dedups_kernels);
    ("plan: ownership by batch order", `Quick, test_plan_ownership_by_batch_order);
    ("batch = serial flow (bit-exact)", `Quick, test_batch_matches_serial_flow);
    ("batch: strictly fewer engine runs", `Quick, test_batch_fewer_engine_invocations);
    ("batch: warm cache bit-exact", `Quick, test_batch_warm_cache_bit_exact);
    ("batch: warm from disk", `Quick, test_batch_warm_from_disk);
    ("batch: corrupt disk cache = miss", `Quick, test_batch_disk_version_mismatch_is_miss);
    ("batch: faulty kernel reported, rest builds", `Quick, test_batch_retries_exhausted_reported);
    ("batch: hung job hits deadline", `Quick, test_batch_hung_job_deadline);
    ("batch: missing kernel reported", `Quick, test_batch_missing_kernel_is_structured);
    ("reuse: estimate = actual", `Quick, test_reuse_agreement);
    ("deprecated hls_cache wrapper", `Quick, test_deprecated_hls_cache_wrapper);
    ("flow hls hook + farm cache", `Quick, test_flow_hls_hook);
    ("trace spans + chrome json", `Quick, test_trace_spans_and_json);
    ("report rendering", `Quick, test_report_rendering);
    qtest prop_jobs_count_invariant;
    qtest prop_transient_faults_converge;
  ]

(* The generation daemon: wire protocol (JSON + framing), admission
   scheduler (coalescing, backpressure, deadlines), and the live server
   end-to-end over real TCP — including the acceptance criteria: K
   identical concurrent submissions run HLS exactly once and return K
   bit-identical manifests; queue overflow is a structured rejection;
   past-deadline requests expire without engine work; and a --kill-at
   crash plus restart on the same cache dir recovers byte-identically
   with zero repeated HLS. *)

module Protocol = Soc_serve.Protocol
module Scheduler = Soc_serve.Scheduler
module Server = Soc_serve.Server
module Client = Soc_serve.Client
module Farm = Soc_farm.Farm
module Jobgraph = Soc_farm.Jobgraph
module Fault = Soc_fault.Fault
module Diag = Soc_util.Diag
module Graphs = Soc_apps.Graphs
module Engine = Soc_hls.Engine
module Breaker = Soc_serve.Breaker
module Cengine = Soc_rtl_compile.Engine

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let w = 16
let h = 16

let arch_source arch = Soc_core.Printer.to_source (Graphs.arch_spec arch)
let kernel_library () = Soc_apps.Otsu.kernels ~width:w ~height:h

(* Reference entry built exactly the way the server builds it: the spec is
   PARSED from the submitted source (parsing attaches source spans, which
   participate in the build digest), not taken from the EDSL directly. *)
let parsed_entry arch =
  { Jobgraph.spec = Soc_core.Parser.parse (arch_source arch);
    kernels = Graphs.arch_kernels arch ~width:w ~height:h }

let fresh_dir prefix =
  let d = Filename.temp_file prefix ".cache" in
  Sys.remove d;
  d

(* A started in-process server plus a connected client, torn down in
   order no matter how the test ends. *)
let with_server ?(workers = 2) ?(queue_cap = 64) ?cache_dir ?kill ?default_deadline_ms
    ?breaker_threshold ?breaker_cooldown_ms ?build_timeout_ms ?max_worker_restarts
    ?max_sessions ?idle_session_timeout_ms ?clock f =
  let d = Server.default_config in
  let opt v dflt = Option.value v ~default:dflt in
  let cfg =
    { d with
      workers; queue_cap; cache_dir; kill; default_deadline_ms;
      kernels = kernel_library ();
      breaker_threshold = opt breaker_threshold d.Server.breaker_threshold;
      breaker_cooldown_ms = opt breaker_cooldown_ms d.Server.breaker_cooldown_ms;
      build_timeout_ms =
        (match build_timeout_ms with Some _ as v -> v | None -> d.Server.build_timeout_ms);
      max_worker_restarts = opt max_worker_restarts d.Server.max_worker_restarts;
      max_sessions = opt max_sessions d.Server.max_sessions;
      idle_session_timeout_ms =
        (match idle_session_timeout_ms with
        | Some _ as v -> v
        | None -> d.Server.idle_session_timeout_ms);
      clock = opt clock d.Server.clock }
  in
  let srv = Server.start cfg in
  let client = Client.connect ~port:(Server.port srv) () in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      Server.stop srv)
    (fun () -> f srv client)

(* Deterministic service-fault hygiene: every injected behaviour (and the
   global degraded-netlist memory it may leave behind) is cleared no
   matter how the test ends. *)
let with_faults f =
  Fault.Service.reset ();
  Cengine.clear_degraded ();
  Fun.protect
    ~finally:(fun () ->
      Fault.Service.reset ();
      Cengine.clear_degraded ())
    f

(* Poll [p] every 10 ms for up to [for_s] seconds of real time. *)
let eventually ?(for_s = 5.0) p =
  let deadline = Unix.gettimeofday () +. for_s in
  let rec go () =
    if p () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* Raw TCP for wire-abuse tests, bypassing the Client framing. *)
let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let raw_send fd s =
  let b = Bytes.of_string s in
  (try ignore (Unix.write fd b 0 (Bytes.length b)) with Unix.Unix_error _ -> ())

let raw_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let frame_of payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  Bytes.to_string hdr ^ payload

(* ------------------------------------------------------------------ *)
(* Protocol: JSON                                                      *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [ Protocol.Null; Protocol.Bool true; Protocol.Bool false; Protocol.Num 0.0;
      Protocol.Num 42.0; Protocol.Num (-17.0); Protocol.Num 0.5; Protocol.Num 1e15;
      Protocol.Str ""; Protocol.Str "plain"; Protocol.Str "esc \" \\ \n \t \r quo";
      Protocol.Str "unicode \xc3\xa9 \xe2\x82\xac"; Protocol.Arr [];
      Protocol.Arr [ Protocol.Num 1.0; Protocol.Str "two"; Protocol.Null ];
      Protocol.Obj [];
      Protocol.Obj
        [ ("a", Protocol.Num 1.0);
          ("nested", Protocol.Obj [ ("b", Protocol.Arr [ Protocol.Bool false ]) ]) ] ]
  in
  List.iter
    (fun v ->
      let s = Protocol.to_string v in
      check Alcotest.bool (Printf.sprintf "roundtrip %s" s) true
        (Protocol.of_string s = v))
    cases

let test_json_escapes () =
  check Alcotest.string "control chars escaped" {|"\u0001\n"|}
    (Protocol.to_string (Protocol.Str "\x01\n"));
  check Alcotest.bool "\\uXXXX decodes" true
    (Protocol.of_string {|"\u00e9"|} = Protocol.Str "\xc3\xa9");
  check Alcotest.bool "integral floats print as ints" true
    (Protocol.to_string (Protocol.Num 7.0) = "7")

let test_json_parse_errors () =
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "reject %S" s) true
        (match Protocol.of_string s with
        | exception Protocol.Parse_error _ -> true
        | _ -> false))
    [ ""; "{"; "tru"; "1 2"; "{\"a\":}"; "[1,]"; "\"\\ud800\""; "nul" ]

let json_gen =
  let open QCheck in
  let leaf =
    Gen.oneof
      [ Gen.return Protocol.Null;
        Gen.map (fun b -> Protocol.Bool b) Gen.bool;
        (* Integral and dyadic values round-trip exactly through the
           printer; that is all the protocol ever sends. *)
        Gen.map (fun n -> Protocol.Num (float_of_int n)) (Gen.int_range (-1000000) 1000000);
        Gen.map (fun n -> Protocol.Num (float_of_int n /. 16.0)) (Gen.int_range 0 10000);
        Gen.map (fun s -> Protocol.Str s) Gen.string_printable ]
  in
  let tree =
    Gen.sized (fun size ->
        Gen.fix
          (fun self n ->
            if n = 0 then leaf
            else
              Gen.oneof
                [ leaf;
                  Gen.map (fun l -> Protocol.Arr l) (Gen.list_size (Gen.int_bound 4) (self (n / 2)));
                  Gen.map
                    (fun kvs -> Protocol.Obj kvs)
                    (Gen.list_size (Gen.int_bound 4)
                       (Gen.pair Gen.string_printable (self (n / 2)))) ])
          (min size 6))
  in
  QCheck.make ~print:(fun v -> Protocol.to_string v) tree

let prop_json_roundtrip =
  QCheck.Test.make ~name:"protocol json print/parse roundtrip" ~count:300 json_gen
    (fun v -> Protocol.of_string (Protocol.to_string v) = v)

(* ------------------------------------------------------------------ *)
(* Protocol: framing                                                   *)
(* ------------------------------------------------------------------ *)

let with_pipe f =
  let r, wfd = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close wfd with Unix.Unix_error _ -> ())
    (fun () -> f r wfd)

let test_framing_roundtrip () =
  with_pipe (fun r wfd ->
      Protocol.write_frame wfd "hello";
      Protocol.write_frame wfd "";
      (* Stay well under the pipe's buffer: these writes happen before any
         read drains it. *)
      Protocol.write_frame wfd (String.make 30000 'x');
      Unix.close wfd;
      check Alcotest.(option string) "first" (Some "hello") (Protocol.read_frame r);
      check Alcotest.(option string) "empty" (Some "") (Protocol.read_frame r);
      check Alcotest.(option int) "large" (Some 30000)
        (Option.map String.length (Protocol.read_frame r));
      check Alcotest.(option string) "clean EOF" None (Protocol.read_frame r))

let test_framing_torn_payload () =
  with_pipe (fun r wfd ->
      (* Header announces 10 bytes; only 3 arrive before EOF. *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 10l;
      ignore (Unix.write wfd hdr 0 4);
      ignore (Unix.write_substring wfd "abc" 0 3);
      Unix.close wfd;
      check Alcotest.bool "torn payload detected" true
        (match Protocol.read_frame r with
        | exception Protocol.Framing_error _ -> true
        | _ -> false))

let test_framing_oversize () =
  with_pipe (fun r wfd ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 1000l;
      ignore (Unix.write wfd hdr 0 4);
      check Alcotest.bool "oversize frame rejected" true
        (match Protocol.read_frame ~max_len:64 r with
        | exception Protocol.Framing_error _ -> true
        | _ -> false);
      check Alcotest.bool "oversize write rejected" true
        (match Protocol.write_frame ~max_len:8 wfd "123456789" with
        | exception Protocol.Framing_error _ -> true
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Protocol: request / response vocabulary                             *)
(* ------------------------------------------------------------------ *)

let sample_diags =
  [ Diag.error ~span:{ Diag.line = 3; col = 7 } ~code:"SOC031" ~subject:"a.x->b.y"
      "rates differ";
    Diag.warning ~code:"RES211" ~subject:"budget" "close to the edge" ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      check Alcotest.bool "request roundtrip" true
        (Protocol.decode_request (Protocol.of_string (Protocol.to_string (Protocol.encode_request req)))
        = Ok req))
    [ Protocol.Submit { source = "object x {}"; priority = 3; deadline_ms = Some 250 };
      Protocol.Submit { source = ""; priority = 0; deadline_ms = None };
      Protocol.Status 7; Protocol.Result 9; Protocol.Stats; Protocol.Drain;
      Protocol.Ping ]

let test_response_roundtrip () =
  let stats =
    { Protocol.uptime_ms = 1234.0; workers = 4; live_workers = 3; degraded = true;
      draining = false; submitted = 10;
      coalesced = 3; completed = 6; failed = 1; expired = 1; rejected_queue = 2;
      rejected_check = 1; queue_depth = 2; running = 1; cache_hits = 5;
      cache_disk_hits = 2; cache_misses = 3; hit_rate = 0.7; engine_runs = 3;
      worker_restarts = 2; watchdog_fires = 1; breaker_open_keys = 1;
      rejected_poisoned = 4; sim_fallbacks = 1; rtl_verify_rejects = 2;
      tape_reverifies = 5;
      fleet_workers = 2; fleet_live = 1; remote_dispatches = 9; remote_retries = 2;
      remote_hedges = 1; remote_cancels = 1; remote_fallbacks = 3;
      lat_count = 6; lat_p50_ms = 8.0; lat_p95_ms = 16.0; lat_p99_ms = 16.0 }
  in
  List.iter
    (fun resp ->
      check Alcotest.bool "response roundtrip" true
        (Protocol.decode_response
           (Protocol.of_string (Protocol.to_string (Protocol.encode_response resp)))
        = Ok resp))
    [ Protocol.Accepted { id = 1; key = "abcd"; coalesced = true; diags = sample_diags };
      Protocol.Rejected
        { reason = Protocol.Queue_full; detail = "cap 2"; diags = [] };
      Protocol.Rejected
        { reason = Protocol.Check_failed; detail = "1 error"; diags = sample_diags };
      Protocol.Status_r { id = 4; state = Protocol.Queued 2 };
      Protocol.Status_r { id = 4; state = Protocol.Running };
      Protocol.Status_r { id = 4; state = Protocol.Failed "boom" };
      Protocol.Result_r
        { id = 4; state = Protocol.Done; design = "otsu_arch1"; digest = "ff00";
          manifest = "[]\n"; wall_ms = 12.5 };
      Protocol.Stats_r stats; Protocol.Drained { completed = 6; failed = 1 };
      Protocol.Error_r "unknown id"; Protocol.Pong ]

let test_diag_json_roundtrip () =
  List.iter
    (fun d ->
      check Alcotest.bool "diag roundtrip" true
        (Protocol.diag_of_json (Protocol.json_of_diag d) = d))
    sample_diags

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_sched_priority_fifo () =
  let s = Scheduler.create ~queue_cap:10 () in
  ignore (Scheduler.submit s ~key:"a" "a");
  ignore (Scheduler.submit s ~key:"b" ~priority:5 "b");
  ignore (Scheduler.submit s ~key:"c" "c");
  let take () =
    match Scheduler.next s with
    | Some j ->
      Scheduler.finish s j (Scheduler.Ok_r ());
      Scheduler.job_key j
    | None -> "none"
  in
  let first = take () in
  let second = take () in
  let third = take () in
  check Alcotest.(list string) "priority first, then FIFO" [ "b"; "a"; "c" ]
    [ first; second; third ]

let test_sched_coalescing () =
  let s = Scheduler.create ~queue_cap:10 () in
  let id1 =
    match Scheduler.submit s ~key:"k" "payload" with
    | Scheduler.Enqueued id -> id
    | _ -> Alcotest.fail "expected Enqueued"
  in
  let id2 =
    match Scheduler.submit s ~key:"k" "payload" with
    | Scheduler.Coalesced id -> id
    | _ -> Alcotest.fail "expected Coalesced"
  in
  let job = Option.get (Scheduler.next s) in
  check Alcotest.(list int) "both requests attached" [ id1; id2 ] (Scheduler.job_ids job);
  (* Still coalesces while running. *)
  (match Scheduler.submit s ~key:"k" "payload" with
  | Scheduler.Coalesced _ -> ()
  | _ -> Alcotest.fail "expected coalescing with the running job");
  Scheduler.finish s job (Scheduler.Ok_r "done");
  check Alcotest.bool "waiters see the one result" true
    (Scheduler.wait s id1 = Some (Scheduler.Ok_r "done")
    && Scheduler.wait s id2 = Some (Scheduler.Ok_r "done"));
  (* After the job finished, the key is fresh again. *)
  (match Scheduler.submit s ~key:"k" "payload" with
  | Scheduler.Enqueued _ -> ()
  | _ -> Alcotest.fail "finished keys must not coalesce");
  let st = Scheduler.stats s in
  check Alcotest.int "coalesced counted" 2 st.Scheduler.coalesced;
  check Alcotest.int "completed counts every attached request" 3 st.Scheduler.completed

let test_sched_backpressure () =
  let s = Scheduler.create ~queue_cap:2 () in
  ignore (Scheduler.submit s ~key:"a" "a");
  ignore (Scheduler.submit s ~key:"b" "b");
  check Alcotest.bool "over-cap submit rejected" true
    (Scheduler.submit s ~key:"c" "c" = Scheduler.Rejected_full);
  (* Coalescing does not create a job, so it is admitted past the cap. *)
  (match Scheduler.submit s ~key:"a" "a" with
  | Scheduler.Coalesced _ -> ()
  | _ -> Alcotest.fail "coalescing must bypass the cap");
  check Alcotest.int "rejection counted" 1 (Scheduler.stats s).Scheduler.rejected

let test_sched_deadline_expiry () =
  let now = ref 0.0 in
  let lat = ref [] in
  let s =
    Scheduler.create ~clock:(fun () -> !now)
      ~on_done:(fun ~latency -> lat := latency :: !lat)
      ~queue_cap:10 ()
  in
  let id1 =
    match Scheduler.submit s ~key:"a" ~deadline_ms:100 "a" with
    | Scheduler.Enqueued id -> id
    | _ -> Alcotest.fail "expected Enqueued"
  in
  ignore (Scheduler.submit s ~key:"b" "b");
  now := 1.0;
  (* Dispatch skips the dead job without running it and hands out the
     live one. *)
  let job = Option.get (Scheduler.next s) in
  check Alcotest.string "expired job never dispatched" "b" (Scheduler.job_key job);
  check Alcotest.bool "expired status" true
    (Scheduler.status s id1 = Some (Scheduler.Finished Scheduler.Expired));
  Scheduler.finish s job (Scheduler.Ok_r ());
  check Alcotest.int "expired counted" 1 (Scheduler.stats s).Scheduler.expired;
  check Alcotest.(list (float 0.001)) "latency recorded for both" [ 1000.0; 1000.0 ]
    !lat

let test_sched_abort_all () =
  let s = Scheduler.create ~queue_cap:10 () in
  let id1 =
    match Scheduler.submit s ~key:"a" "a" with
    | Scheduler.Enqueued id -> id
    | _ -> Alcotest.fail "expected Enqueued"
  in
  let job = Option.get (Scheduler.next s) in
  let id2 =
    match Scheduler.submit s ~key:"b" "b" with
    | Scheduler.Enqueued id -> id
    | _ -> Alcotest.fail "expected Enqueued"
  in
  Scheduler.abort_all s ~reason:"killed";
  check Alcotest.bool "running job failed" true
    (Scheduler.wait s id1 = Some (Scheduler.Failed "killed"));
  check Alcotest.bool "queued job failed" true
    (Scheduler.wait s id2 = Some (Scheduler.Failed "killed"));
  check Alcotest.bool "workers sent home" true (Scheduler.next s = None);
  (* A late finish from the worker that held the job must not overwrite
     the abort verdict or double-count. *)
  Scheduler.finish s job (Scheduler.Ok_r "late");
  check Alcotest.bool "abort verdict sticks" true
    (Scheduler.wait s id1 = Some (Scheduler.Failed "killed"));
  check Alcotest.int "no double count" 2 (Scheduler.stats s).Scheduler.failed

let test_sched_drain () =
  let s = Scheduler.create ~queue_cap:10 () in
  ignore (Scheduler.submit s ~key:"a" "a");
  Scheduler.drain s;
  check Alcotest.bool "no admissions while draining" true
    (Scheduler.submit s ~key:"b" "b" = Scheduler.Rejected_full);
  let job = Option.get (Scheduler.next s) in
  Scheduler.finish s job (Scheduler.Ok_r ());
  Scheduler.quiesce s;
  check Alcotest.bool "drained queue hands out None" true (Scheduler.next s = None)

let test_sched_status_positions () =
  let s = Scheduler.create ~queue_cap:10 () in
  Scheduler.pause s;
  let id1 =
    match Scheduler.submit s ~key:"a" "a" with Scheduler.Enqueued id -> id | _ -> assert false
  in
  let id2 =
    match Scheduler.submit s ~key:"b" "b" with Scheduler.Enqueued id -> id | _ -> assert false
  in
  check Alcotest.bool "head of queue" true
    (Scheduler.status s id1 = Some (Scheduler.Queued 0));
  check Alcotest.bool "one ahead" true (Scheduler.status s id2 = Some (Scheduler.Queued 1));
  check Alcotest.bool "unknown id" true (Scheduler.status s 999 = None);
  Scheduler.unpause s;
  let j1 = Option.get (Scheduler.next s) in
  check Alcotest.bool "running" true (Scheduler.status s id1 = Some Scheduler.Running);
  Scheduler.finish s j1 (Scheduler.Ok_r ());
  let j2 = Option.get (Scheduler.next s) in
  Scheduler.finish s j2 (Scheduler.Ok_r ())

(* ------------------------------------------------------------------ *)
(* Server end-to-end (real TCP)                                        *)
(* ------------------------------------------------------------------ *)

let submit_ok client ?priority ?deadline_ms source =
  match Client.submit client ?priority ?deadline_ms source with
  | Protocol.Accepted { id; coalesced; _ } -> (id, coalesced)
  | r ->
    Alcotest.failf "submit not accepted: %s" Protocol.(to_string (encode_response r))

let result_done client id =
  match Client.result client id with
  | Protocol.Result_r { state = Protocol.Done; design; digest; manifest; _ } ->
    (design, digest, manifest)
  | r ->
    Alcotest.failf "result not done: %s" Protocol.(to_string (encode_response r))

let test_serve_single_build () =
  with_server (fun _srv client ->
      check Alcotest.bool "ping" true (Client.ping client);
      let id, coalesced = submit_ok client (arch_source Graphs.Arch1) in
      check Alcotest.bool "first submit is fresh" false coalesced;
      let design, digest, manifest = result_done client id in
      check Alcotest.string "design name" "otsu_arch1" design;
      (* The served digest and manifest are exactly what a direct farm
         build of the same source produces. *)
      let direct = Farm.build_batch ~jobs:1 [ parsed_entry Graphs.Arch1 ] in
      let direct_digest =
        match direct.Farm.builds with
        | [ (_, b) ] -> Farm.build_digest b
        | _ -> Alcotest.fail "direct build failed"
      in
      check Alcotest.string "digest matches direct build" direct_digest digest;
      check Alcotest.string "manifest matches direct build"
        (Farm.manifest_json direct) manifest)

let test_serve_coalescing_concurrent () =
  with_server ~workers:2 (fun srv client ->
      Server.pause srv;
      let engine0 = Engine.invocation_count () in
      let source = arch_source Graphs.Arch1 in
      let ids =
        List.init 8 (fun i ->
            let id, coalesced = submit_ok client source in
            check Alcotest.bool
              (Printf.sprintf "submission %d coalesces iff not first" i)
              (i > 0) coalesced;
            id)
      in
      Server.unpause srv;
      let results = List.map (fun id -> result_done client id) ids in
      (match results with
      | [] -> Alcotest.fail "no results"
      | (_, digest0, manifest0) :: rest ->
        List.iteri
          (fun i (_, digest, manifest) ->
            check Alcotest.string (Printf.sprintf "digest %d identical" (i + 1))
              digest0 digest;
            check Alcotest.string (Printf.sprintf "manifest %d identical" (i + 1))
              manifest0 manifest)
          rest);
      (* 8 requests, 1 job, 1 distinct kernel: exactly one real HLS run. *)
      check Alcotest.int "exactly one HLS engine run" 1
        (Engine.invocation_count () - engine0);
      let s = Client.stats client in
      check Alcotest.int "submitted" 8 s.Protocol.submitted;
      check Alcotest.int "coalesced" 7 s.Protocol.coalesced;
      check Alcotest.int "completed" 8 s.Protocol.completed;
      check Alcotest.int "engine runs in stats" 1 s.Protocol.engine_runs;
      check Alcotest.int "latency observed per request" 8 s.Protocol.lat_count;
      check Alcotest.bool "p50 <= p95 <= p99" true
        (s.Protocol.lat_p50_ms <= s.Protocol.lat_p95_ms
        && s.Protocol.lat_p95_ms <= s.Protocol.lat_p99_ms
        && s.Protocol.lat_p50_ms > 0.0))

let test_serve_mixed_batch_dedup () =
  with_server ~workers:2 (fun srv client ->
      Server.pause srv;
      (* 4 distinct archs, then every one again: only true duplicates
         coalesce. *)
      let sources = List.map arch_source Graphs.all_archs in
      let fresh = List.map (fun s -> submit_ok client s) sources in
      let dups = List.map (fun s -> submit_ok client s) sources in
      List.iter
        (fun (_, coalesced) -> check Alcotest.bool "fresh arch enqueued" false coalesced)
        fresh;
      List.iter
        (fun (_, coalesced) -> check Alcotest.bool "repeat arch coalesced" true coalesced)
        dups;
      Server.unpause srv;
      List.iter2
        (fun (id_f, _) (id_d, _) ->
          let _, digest_f, manifest_f = result_done client id_f in
          let _, digest_d, manifest_d = result_done client id_d in
          check Alcotest.string "dup digest identical" digest_f digest_d;
          check Alcotest.string "dup manifest identical" manifest_f manifest_d)
        fresh dups;
      let s = Client.stats client in
      check Alcotest.int "4 of 8 coalesced" 4 s.Protocol.coalesced;
      check Alcotest.int "all 8 completed" 8 s.Protocol.completed)

let test_serve_queue_overflow () =
  with_server ~workers:1 ~queue_cap:2 (fun srv client ->
      Server.pause srv;
      ignore (submit_ok client (arch_source Graphs.Arch1));
      ignore (submit_ok client (arch_source Graphs.Arch2));
      (* Third distinct design: structured rejection, not a hang. *)
      (match Client.submit client (arch_source Graphs.Arch3) with
      | Protocol.Rejected { reason = Protocol.Queue_full; detail; _ } ->
        check Alcotest.bool "detail names the cap" true
          (String.length detail > 0)
      | r ->
        Alcotest.failf "expected Queue_full, got %s"
          Protocol.(to_string (encode_response r)));
      (* A duplicate of a queued design still coalesces past the cap. *)
      let _, coalesced = submit_ok client (arch_source Graphs.Arch1) in
      check Alcotest.bool "coalescing bypasses the cap" true coalesced;
      Server.unpause srv;
      let s = Client.stats client in
      check Alcotest.int "rejection counted" 1 s.Protocol.rejected_queue)

let test_serve_deadline_expiry () =
  with_server ~workers:1 (fun srv client ->
      Server.pause srv;
      let engine0 = Engine.invocation_count () in
      let id, _ = submit_ok client ~deadline_ms:1 (arch_source Graphs.Arch1) in
      Unix.sleepf 0.05;
      Server.unpause srv;
      (match Client.result client id with
      | Protocol.Result_r { state = Protocol.Expired; _ } -> ()
      | r ->
        Alcotest.failf "expected Expired, got %s"
          Protocol.(to_string (encode_response r)));
      check Alcotest.int "no engine work for an expired request" 0
        (Engine.invocation_count () - engine0);
      check Alcotest.int "expired counted" 1 (Client.stats client).Protocol.expired)

let test_serve_check_gate () =
  with_server (fun _srv client ->
      (match Client.submit client "this is not a design" with
      | Protocol.Rejected { reason = Protocol.Parse_failed; diags; _ } ->
        check Alcotest.bool "SOC000 diag travels" true
          (List.exists (fun (d : Diag.t) -> d.Diag.code = "SOC000") diags)
      | r ->
        Alcotest.failf "expected Parse_failed, got %s"
          Protocol.(to_string (encode_response r)));
      (* Parses, but the analyzer finds a structural error (duplicate
         node name, SOC001): rejected with the diagnostics attached. *)
      let bad =
        "object bad extends App {\n  tg nodes;\n    tg node \"A\" is \"p\" end;\n\
        \    tg node \"A\" is \"q\" end;\n  tg end_nodes;\n  tg edges;\n\
        \    tg link 'soc to (\"A\", \"p\") end;\n  tg end_edges;\n}"
      in
      (match Client.submit client bad with
      | Protocol.Rejected { reason = Protocol.Check_failed; diags; _ } ->
        check Alcotest.bool "SOC001 diag travels" true
          (List.exists (fun (d : Diag.t) -> d.Diag.code = "SOC001") diags)
      | r ->
        Alcotest.failf "expected Check_failed, got %s"
          Protocol.(to_string (encode_response r)));
      let s = Client.stats client in
      check Alcotest.int "check rejections counted" 2 s.Protocol.rejected_check;
      check Alcotest.int "nothing admitted" 0 s.Protocol.submitted)

let test_serve_status_and_errors () =
  with_server (fun srv client ->
      (match Client.status client 424242 with
      | Protocol.Error_r _ -> ()
      | r ->
        Alcotest.failf "expected Error_r, got %s"
          Protocol.(to_string (encode_response r)));
      Server.pause srv;
      let id, _ = submit_ok client (arch_source Graphs.Arch1) in
      (match Client.status client id with
      | Protocol.Status_r { state = Protocol.Queued 0; _ } -> ()
      | r ->
        Alcotest.failf "expected Queued 0, got %s"
          Protocol.(to_string (encode_response r)));
      Server.unpause srv;
      ignore (result_done client id);
      match Client.status client id with
      | Protocol.Status_r { state = Protocol.Done; _ } -> ()
      | r ->
        Alcotest.failf "expected Done, got %s" Protocol.(to_string (encode_response r)))

let test_serve_drain () =
  with_server (fun srv client ->
      let id, _ = submit_ok client (arch_source Graphs.Arch1) in
      ignore (result_done client id);
      let completed, failed = Client.drain client in
      check Alcotest.int "drained completed" 1 completed;
      check Alcotest.int "drained failed" 0 failed;
      (* Post-drain submissions are refused, not queued. *)
      (match Client.submit client (arch_source Graphs.Arch2) with
      | Protocol.Rejected { reason = Protocol.Draining; _ } -> ()
      | r ->
        Alcotest.failf "expected Draining, got %s"
          Protocol.(to_string (encode_response r)));
      check Alcotest.bool "server observed the drain" true
        (Server.wait srv = `Drained (1, 0)))

let test_serve_kill_and_restart () =
  let dir = fresh_dir "socserve" in
  (* Phase 1: armed crash point fires inside the build, after HLS
     committed (synth is downstream of every hls job). *)
  let engine0 = Engine.invocation_count () in
  with_server ~workers:1 ~cache_dir:dir ~kill:(Fault.Kill_at ("synth", 0))
    (fun srv client ->
      let id, _ = submit_ok client (arch_source Graphs.Arch1) in
      (match Client.result client id with
      | Protocol.Result_r { state = Protocol.Failed reason; _ } ->
        check Alcotest.bool "failure names the kill" true
          (String.length reason > 0)
      | r ->
        Alcotest.failf "expected Failed, got %s"
          Protocol.(to_string (encode_response r)));
      check Alcotest.bool "server reports the crash point" true
        (Server.wait srv = `Killed ("synth", 0));
      (* A dead server admits nothing. *)
      match Client.submit client (arch_source Graphs.Arch1) with
      | Protocol.Rejected { reason = Protocol.Server_killed; _ } -> ()
      | r ->
        Alcotest.failf "expected Server_killed, got %s"
          Protocol.(to_string (encode_response r)));
  let hls_runs_before_kill = Engine.invocation_count () - engine0 in
  check Alcotest.int "HLS committed before the crash" 1 hls_runs_before_kill;
  (* Phase 2: a fresh daemon on the same cache dir — startup fsck, journal
     resume, disk-cache reuse. The rebuilt design is byte-identical to an
     uninterrupted build and repeats zero HLS work. *)
  let reference = Farm.build_batch ~jobs:1 [ parsed_entry Graphs.Arch1 ] in
  let reference_digest =
    match reference.Farm.builds with
    | [ (_, b) ] -> Farm.build_digest b
    | _ -> Alcotest.fail "reference build failed"
  in
  let engine1 = Engine.invocation_count () in
  with_server ~workers:1 ~cache_dir:dir (fun _srv client ->
      let id, _ = submit_ok client (arch_source Graphs.Arch1) in
      let _, digest, manifest = result_done client id in
      check Alcotest.string "recovered digest identical to uninterrupted build"
        reference_digest digest;
      check Alcotest.string "recovered manifest identical"
        (Farm.manifest_json reference) manifest;
      let s = Client.stats client in
      check Alcotest.int "zero repeated HLS after restart" 0 s.Protocol.engine_runs;
      check Alcotest.bool "artifact came from the disk cache" true
        (s.Protocol.cache_disk_hits >= 1));
  check Alcotest.int "no engine work in the restarted server" 0
    (Engine.invocation_count () - engine1)

let test_serve_warm_cache_hit_rate () =
  with_server ~workers:1 (fun _srv client ->
      let id1, _ = submit_ok client (arch_source Graphs.Arch1) in
      ignore (result_done client id1);
      (* Same design again after the first finished: no coalescing (the
         job is gone), but the shared cache absorbs the HLS work. *)
      let engine0 = Engine.invocation_count () in
      let id2, coalesced = submit_ok client (arch_source Graphs.Arch1) in
      check Alcotest.bool "sequential repeat is not coalesced" false coalesced;
      let _, d1, _ = result_done client id1 in
      let _, d2, _ = result_done client id2 in
      check Alcotest.string "warm rebuild bit-identical" d1 d2;
      check Alcotest.int "warm rebuild runs no engine" 0
        (Engine.invocation_count () - engine0);
      let s = Client.stats client in
      check Alcotest.bool "hit rate reflects the warm build" true
        (s.Protocol.hit_rate > 0.0 && s.Protocol.cache_hits >= 1))

(* ------------------------------------------------------------------ *)
(* Self-healing: breaker, supervision, watchdog, degradation           *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_breaker_unit () =
  let now = ref 0.0 in
  let b = Breaker.create ~clock:(fun () -> !now) ~threshold:2 ~cooldown_ms:1000 () in
  check Alcotest.bool "closed admits" true (Breaker.check b "k" = Breaker.Admit);
  Breaker.record b "k" ~ok:false;
  check Alcotest.bool "one failure still admits" true (Breaker.check b "k" = Breaker.Admit);
  Breaker.record b "k" ~ok:false;
  (match Breaker.check b "k" with
  | Breaker.Reject remaining ->
    check Alcotest.bool "cooldown remaining reported" true (remaining > 0.0)
  | _ -> Alcotest.fail "expected Reject at the threshold");
  check Alcotest.int "one open key" 1 (Breaker.open_keys b);
  check Alcotest.int "one trip" 1 (Breaker.trips b);
  check Alcotest.bool "other keys unaffected" true (Breaker.check b "other" = Breaker.Admit);
  now := 1.5;
  check Alcotest.bool "past cooldown: half-open probe" true
    (Breaker.check b "k" = Breaker.Probe);
  check Alcotest.bool "probe in flight: reject" true
    (Breaker.check b "k" = Breaker.Reject 0.0);
  Breaker.record b "k" ~ok:false;
  (match Breaker.check b "k" with
  | Breaker.Reject _ -> ()
  | _ -> Alcotest.fail "failed probe must reopen");
  check Alcotest.int "reopen counted as a trip" 2 (Breaker.trips b);
  now := 3.0;
  check Alcotest.bool "second probe offered" true (Breaker.check b "k" = Breaker.Probe);
  Breaker.record b "k" ~ok:true;
  check Alcotest.bool "successful probe closes" true (Breaker.check b "k" = Breaker.Admit);
  check Alcotest.int "no open keys after recovery" 0 (Breaker.open_keys b);
  (* Intermittent flakiness never trips: success resets the count. *)
  Breaker.record b "f" ~ok:false;
  Breaker.record b "f" ~ok:true;
  Breaker.record b "f" ~ok:false;
  check Alcotest.bool "alternating outcomes stay closed" true
    (Breaker.check b "f" = Breaker.Admit);
  (* threshold <= 0 disables the breaker entirely. *)
  let off = Breaker.create ~threshold:0 ~cooldown_ms:10 () in
  Breaker.record off "x" ~ok:false;
  Breaker.record off "x" ~ok:false;
  check Alcotest.bool "disabled breaker always admits" true
    (Breaker.check off "x" = Breaker.Admit)

let test_sched_flush_queued () =
  let s = Scheduler.create ~queue_cap:10 () in
  let id1 =
    match Scheduler.submit s ~key:"a" "a" with Scheduler.Enqueued id -> id | _ -> assert false
  in
  let job = Option.get (Scheduler.next s) in
  let id2 =
    match Scheduler.submit s ~key:"b" "b" with Scheduler.Enqueued id -> id | _ -> assert false
  in
  let id3 =
    match Scheduler.submit s ~key:"c" "c" with Scheduler.Enqueued id -> id | _ -> assert false
  in
  check Alcotest.int "both queued jobs flushed" 2
    (Scheduler.flush_queued s ~reason:"pool dead");
  check Alcotest.bool "queued waiters failed, running job untouched" true
    (Scheduler.wait s id2 = Some (Scheduler.Failed "pool dead")
    && Scheduler.wait s id3 = Some (Scheduler.Failed "pool dead")
    && Scheduler.status s id1 = Some Scheduler.Running);
  (* try_finish: the first verdict lands, a late second one no-ops. *)
  check Alcotest.bool "watchdog verdict lands" true
    (Scheduler.try_finish s job Scheduler.Expired);
  check Alcotest.bool "late worker finish no-ops" false
    (Scheduler.try_finish s job (Scheduler.Ok_r "late"));
  check Alcotest.bool "expiry verdict sticks" true
    (Scheduler.wait s id1 = Some Scheduler.Expired)

let test_serve_batch_fault_contained () =
  with_faults (fun () ->
      with_server ~workers:2 (fun srv client ->
          (* An exception escaping Farm.build_batch fails the request,
             never the worker thread that ran it. *)
          Fault.Service.arm Fault.Service.Batch ~times:1
            (Fault.Service.Raise "boom in build_batch");
          let id, _ = submit_ok client (arch_source Graphs.Arch1) in
          (match Client.result client id with
          | Protocol.Result_r { state = Protocol.Failed reason; _ } ->
            check Alcotest.bool "failure names the injection" true
              (contains reason "internal error" && contains reason "boom in build_batch")
          | r ->
            Alcotest.failf "expected Failed, got %s"
              Protocol.(to_string (encode_response r)));
          check Alcotest.int "no worker died" 2 (Server.live_workers srv);
          check Alcotest.int "no restart burned" 0
            (Client.stats client).Protocol.worker_restarts;
          let id2, _ = submit_ok client (arch_source Graphs.Arch2) in
          ignore (result_done client id2)))

let test_serve_worker_crash_supervised () =
  with_faults (fun () ->
      with_server ~workers:2 (fun srv client ->
          (* A worker thread that dies outside the containment boundary:
             the held request fails, the supervisor spawns a replacement. *)
          Fault.Service.arm Fault.Service.Worker ~times:1
            (Fault.Service.Raise "thread down");
          let id, _ = submit_ok client (arch_source Graphs.Arch1) in
          (match Client.result client id with
          | Protocol.Result_r { state = Protocol.Failed reason; _ } ->
            check Alcotest.bool "failure names the crashed worker" true
              (contains reason "crashed")
          | r ->
            Alcotest.failf "expected Failed, got %s"
              Protocol.(to_string (encode_response r)));
          check Alcotest.bool "supervisor restores the pool" true
            (eventually (fun () ->
                 Server.live_workers srv = 2
                 && (Server.stats srv).Protocol.worker_restarts >= 1));
          check Alcotest.bool "pool not degraded" false (Server.is_degraded srv);
          let id2, _ = submit_ok client (arch_source Graphs.Arch1) in
          ignore (result_done client id2)))

let test_serve_degraded_pool () =
  with_faults (fun () ->
      with_server ~workers:1 ~max_worker_restarts:0 (fun srv client ->
          Fault.Service.arm Fault.Service.Worker ~times:1
            (Fault.Service.Raise "thread down");
          let id, _ = submit_ok client (arch_source Graphs.Arch1) in
          (match Client.result client id with
          | Protocol.Result_r { state = Protocol.Failed _; _ } -> ()
          | r ->
            Alcotest.failf "expected Failed, got %s"
              Protocol.(to_string (encode_response r)));
          (* Zero restart budget: the dead worker is not replaced and the
             pool is declared degraded. *)
          check Alcotest.bool "pool declared degraded" true
            (eventually (fun () -> Server.is_degraded srv));
          check Alcotest.int "no live workers left" 0 (Server.live_workers srv);
          check Alcotest.bool "stats carry the flag" true
            (Server.stats srv).Protocol.degraded;
          (* Admission refuses outright rather than queueing into the void. *)
          match Client.submit client (arch_source Graphs.Arch2) with
          | Protocol.Rejected { reason = Protocol.Degraded; _ } -> ()
          | r ->
            Alcotest.failf "expected Degraded, got %s"
              Protocol.(to_string (encode_response r))))

let test_serve_watchdog_expires_wedged_build () =
  with_faults (fun () ->
      let now = ref 0.0 in
      with_server ~workers:1 ~clock:(fun () -> !now) (fun srv client ->
          (* The build wedges inside HLS; its 100 ms deadline passes on
             the fake clock; the watchdog must expire it and replace the
             wedged worker without waiting out the hang. *)
          Fault.Service.arm Fault.Service.Hls ~times:1 (Fault.Service.Hang 30.0);
          let id, _ = submit_ok client ~deadline_ms:100 (arch_source Graphs.Arch1) in
          check Alcotest.bool "build wedged in flight" true
            (eventually (fun () -> (Server.stats srv).Protocol.running = 1));
          now := 1.0;
          (match Client.result client id with
          | Protocol.Result_r { state = Protocol.Expired; _ } -> ()
          | r ->
            Alcotest.failf "expected Expired, got %s"
              Protocol.(to_string (encode_response r)));
          check Alcotest.int "watchdog fire counted" 1
            (Server.stats srv).Protocol.watchdog_fires;
          Fault.Service.release_hangs ();
          check Alcotest.bool "replacement restores the pool" true
            (eventually (fun () ->
                 Server.live_workers srv = 1
                 && (Server.stats srv).Protocol.worker_restarts >= 1));
          let id2, _ = submit_ok client (arch_source Graphs.Arch2) in
          ignore (result_done client id2)))

let test_serve_poison_breaker () =
  with_faults (fun () ->
      let now = ref 0.0 in
      with_server ~workers:1 ~breaker_threshold:2 ~breaker_cooldown_ms:1000
        ~clock:(fun () -> !now) (fun _srv client ->
          Fault.Service.arm Fault.Service.Hls (Fault.Service.Raise "poison");
          let fail_once () =
            let id, _ = submit_ok client (arch_source Graphs.Arch1) in
            match Client.result client id with
            | Protocol.Result_r { state = Protocol.Failed _; _ } -> ()
            | r ->
              Alcotest.failf "expected Failed, got %s"
                Protocol.(to_string (encode_response r))
          in
          fail_once ();
          fail_once ();
          (* Threshold reached: the key is rejected without burning a
             worker on a build known to die. *)
          (match Client.submit client (arch_source Graphs.Arch1) with
          | Protocol.Rejected { reason = Protocol.Poisoned; detail; _ } ->
            check Alcotest.bool "detail explains the breaker" true
              (String.length detail > 0)
          | r ->
            Alcotest.failf "expected Poisoned, got %s"
              Protocol.(to_string (encode_response r)));
          let s = Client.stats client in
          check Alcotest.int "poisoned rejection counted" 1 s.Protocol.rejected_poisoned;
          check Alcotest.int "breaker open in stats" 1 s.Protocol.breaker_open_keys;
          (* Cooldown elapses (fake clock) and the poison is cured: the
             half-open probe succeeds and closes the breaker. *)
          Fault.Service.disarm Fault.Service.Hls;
          now := 2.0;
          let id, _ = submit_ok client (arch_source Graphs.Arch1) in
          ignore (result_done client id);
          check Alcotest.int "probe success closes the breaker" 0
            (Client.stats client).Protocol.breaker_open_keys))

let test_serve_sim_fallback () =
  with_faults (fun () ->
      with_server ~workers:1 (fun _srv client ->
          (* A compiled-tape lowering failure mid-build degrades that
             netlist to the interpreter; the build still completes. *)
          Fault.Service.arm Fault.Service.Csim ~times:1
            (Fault.Service.Raise "lowering dies");
          let id, _ = submit_ok client (arch_source Graphs.Arch1) in
          let design, _, _ = result_done client id in
          check Alcotest.string "build completes despite the dead backend"
            "otsu_arch1" design;
          check Alcotest.bool "fallback surfaces in stats" true
            ((Client.stats client).Protocol.sim_fallbacks >= 1)))

let test_serve_corrupt_tape_rejected () =
  (* A miscompiled tape (injected corruption after lowering) is rejected
     by the translation validator, the engine degrades that netlist to
     the interpreter, and the build still completes — byte-identical to
     an uncorrupted build, because the backend choice never leaks into
     the artifacts. *)
  let clean_manifest = ref "" in
  with_faults (fun () ->
      with_server ~workers:1 (fun _srv client ->
          let id, _ = submit_ok client (arch_source Graphs.Arch1) in
          let _, _, manifest = result_done client id in
          clean_manifest := manifest));
  with_faults (fun () ->
      with_server ~workers:1 (fun _srv client ->
          Fault.Service.arm_corrupt_tape ~times:1 ~seed:11 ();
          let id, _ = submit_ok client (arch_source Graphs.Arch1) in
          let design, _, manifest = result_done client id in
          check Alcotest.string "build completes despite the miscompile"
            "otsu_arch1" design;
          check Alcotest.int "fault point consumed" 1 (Fault.Service.corrupt_hits ());
          let s = Client.stats client in
          check Alcotest.bool "verifier rejection surfaces in stats" true
            (s.Protocol.rtl_verify_rejects >= 1);
          check Alcotest.bool "interpreter fallback surfaces in stats" true
            (s.Protocol.sim_fallbacks >= 1);
          check Alcotest.string "manifest byte-identical to the clean build"
            !clean_manifest manifest))

let test_serve_session_cap () =
  with_server ~max_sessions:1 (fun srv client ->
      check Alcotest.bool "the one admitted session works" true (Client.ping client);
      let refused =
        match Client.connect ~port:(Server.port srv) () with
        | exception Client.Error _ -> true
        | c2 ->
          let r =
            match Client.rpc c2 Protocol.Ping with
            | Protocol.Error_r _ -> true
            | exception Client.Error _ -> true
            | _ -> false
          in
          Client.close c2;
          r
      in
      check Alcotest.bool "over-cap connection refused" true refused;
      check Alcotest.bool "original session unharmed" true (Client.ping client);
      check Alcotest.int "cap never exceeded" 1 (Server.session_count srv))

let test_serve_idle_session_timeout () =
  with_server ~idle_session_timeout_ms:100 (fun srv client ->
      check Alcotest.bool "fresh session answers" true (Client.ping client);
      Unix.sleepf 0.5;
      let dropped =
        match Client.ping client with exception Client.Error _ -> true | ok -> not ok
      in
      check Alcotest.bool "idle session dropped" true dropped;
      check Alcotest.bool "session slot reclaimed" true
        (eventually (fun () -> Server.session_count srv = 0));
      let c2 = Client.connect ~port:(Server.port srv) () in
      Fun.protect
        ~finally:(fun () -> Client.close c2)
        (fun () -> check Alcotest.bool "fresh connection serves" true (Client.ping c2)))

let test_serve_wire_fuzz () =
  with_server ~workers:1 (fun srv client ->
      let rng = Random.State.make [| 0xC0FFEE |] in
      let attack i =
        let fd = raw_connect (Server.port srv) in
        (match i mod 5 with
        | 0 ->
          (* random garbage bytes *)
          let n = 1 + Random.State.int rng 64 in
          raw_send fd (String.init n (fun _ -> Char.chr (Random.State.int rng 256)))
        | 1 ->
          (* absurd length prefix *)
          raw_send fd "\x7f\xff\xff\xffjunk"
        | 2 ->
          (* truncated frame: header promises bytes that never come *)
          let hdr = Bytes.create 4 in
          Bytes.set_int32_be hdr 0 (Int32.of_int (64 + Random.State.int rng 1000));
          raw_send fd (Bytes.to_string hdr ^ "abc")
        | 3 -> () (* connect-and-vanish *)
        | _ ->
          (* well-framed payload that is not JSON *)
          raw_send fd
            (frame_of
               (String.init (Random.State.int rng 32) (fun _ ->
                    Char.chr (32 + Random.State.int rng 95)))));
        raw_close fd
      in
      for i = 0 to 59 do
        attack i;
        if i mod 10 = 9 then
          check Alcotest.bool (Printf.sprintf "daemon answers after attack %d" i) true
            (Client.ping client)
      done;
      check Alcotest.bool "abusive sessions all reaped" true
        (eventually (fun () -> Server.session_count srv = 1));
      (* Still a fully functional daemon, not merely a responsive one. *)
      let id, _ = submit_ok client (arch_source Graphs.Arch1) in
      ignore (result_done client id))

let suite =
  [
    ("protocol json roundtrip", `Quick, test_json_roundtrip);
    ("protocol json escapes", `Quick, test_json_escapes);
    ("protocol json parse errors", `Quick, test_json_parse_errors);
    ("protocol framing roundtrip", `Quick, test_framing_roundtrip);
    ("protocol framing torn payload", `Quick, test_framing_torn_payload);
    ("protocol framing oversize", `Quick, test_framing_oversize);
    ("protocol request roundtrip", `Quick, test_request_roundtrip);
    ("protocol response roundtrip", `Quick, test_response_roundtrip);
    ("protocol diag json roundtrip", `Quick, test_diag_json_roundtrip);
    ("scheduler priority + FIFO", `Quick, test_sched_priority_fifo);
    ("scheduler coalescing", `Quick, test_sched_coalescing);
    ("scheduler backpressure", `Quick, test_sched_backpressure);
    ("scheduler deadline expiry", `Quick, test_sched_deadline_expiry);
    ("scheduler abort_all", `Quick, test_sched_abort_all);
    ("scheduler drain", `Quick, test_sched_drain);
    ("scheduler status positions", `Quick, test_sched_status_positions);
    ("serve: single build over TCP", `Quick, test_serve_single_build);
    ("serve: 8 identical submissions, 1 HLS run", `Quick, test_serve_coalescing_concurrent);
    ("serve: mixed batch dedups only duplicates", `Quick, test_serve_mixed_batch_dedup);
    ("serve: queue overflow is a structured rejection", `Quick, test_serve_queue_overflow);
    ("serve: past-deadline request expires without work", `Quick, test_serve_deadline_expiry);
    ("serve: parse/check gate rejects with diagnostics", `Quick, test_serve_check_gate);
    ("serve: status transitions and unknown ids", `Quick, test_serve_status_and_errors);
    ("serve: drain stops admission and reports", `Quick, test_serve_drain);
    ("serve: kill + restart recovers byte-identically", `Quick, test_serve_kill_and_restart);
    ("serve: warm cache absorbs repeat builds", `Quick, test_serve_warm_cache_hit_rate);
    ("breaker: trip, probe, close, disable", `Quick, test_breaker_unit);
    ("scheduler flush_queued + try_finish", `Quick, test_sched_flush_queued);
    ("serve: build fault contained, worker survives", `Quick, test_serve_batch_fault_contained);
    ("serve: dead worker replaced by supervisor", `Quick, test_serve_worker_crash_supervised);
    ("serve: exhausted restart budget degrades the pool", `Quick, test_serve_degraded_pool);
    ("serve: watchdog expires a wedged build", `Quick, test_serve_watchdog_expires_wedged_build);
    ("serve: poison pill opens the breaker, probe closes it", `Quick, test_serve_poison_breaker);
    ("serve: compiled-sim failure degrades to interpreter", `Quick, test_serve_sim_fallback);
    ("serve: corrupt tape rejected by the verifier, build identical", `Quick,
     test_serve_corrupt_tape_rejected);
    ("serve: session cap refuses politely", `Quick, test_serve_session_cap);
    ("serve: idle sessions reaped", `Quick, test_serve_idle_session_timeout);
    ("serve: wire abuse never takes the daemon down", `Quick, test_serve_wire_fuzz);
    qtest prop_json_roundtrip;
  ]

(* Tests for the extension modules: the HTG-to-DSL bridge (Section III
   mapping), the Quartus backend (Section II-C extensibility claim),
   interrupt-driven completion, and device-utilization reporting. *)

open Soc_core

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* HTG bridge                                                          *)
(* ------------------------------------------------------------------ *)

let test_fig1_maps_to_fig4 () =
  (* The paper's worked example: applying the Section III mapping to the
     Fig. 1 HTG must yield the Fig. 4 architecture. *)
  let derived = Htg_bridge.to_spec Soc_apps.Graphs.fig1_htg in
  let reference = Soc_apps.Graphs.fig4_spec in
  let node_set spec =
    List.sort compare
      (List.map
         (fun (n : Spec.node_spec) -> (n.Spec.node_name, List.sort compare n.Spec.node_ports))
         spec.Spec.nodes)
  in
  check Alcotest.bool "same node set" true (node_set derived = node_set reference);
  check
    (Alcotest.slist Alcotest.string compare)
    "same AXI-Lite connections"
    (Spec.connects reference) (Spec.connects derived);
  let links spec = List.sort compare (Spec.links spec) in
  check Alcotest.bool "same stream links" true (links derived = links reference)

let test_sw_nodes_dropped () =
  let derived = Htg_bridge.to_spec Soc_apps.Graphs.fig1_htg in
  check Alcotest.bool "N1 not in the system" true (Spec.find_node derived "N1" = None);
  check
    (Alcotest.slist Alcotest.string compare)
    "software residual" [ "N1"; "N4" ]
    (Htg_bridge.software_residual Soc_apps.Graphs.fig1_htg)

let test_custom_lite_ports () =
  let g =
    Soc_htg.Htg.make ~name:"g"
      ~nodes:[ Soc_htg.Htg.task ~mapping:Soc_htg.Htg.Hw "FIR" ]
      ~edges:[]
  in
  let spec =
    Htg_bridge.to_spec ~lite_ports:(fun _ -> [ "coeff"; "length"; "status" ]) g
  in
  match Spec.find_node spec "FIR" with
  | Some n ->
    check
      (Alcotest.list Alcotest.string)
      "custom ports" [ "coeff"; "length"; "status" ]
      (List.map fst n.Spec.node_ports)
  | None -> Alcotest.fail "FIR missing"

let test_derived_spec_flows_end_to_end () =
  (* The derived Fig. 4 spec must drive the whole flow like the manual one. *)
  let spec = Htg_bridge.to_spec Soc_apps.Graphs.fig1_htg in
  let b = Flow.build spec ~kernels:(Soc_apps.Graphs.fig4_kernels ~width:8 ~height:8) in
  check Alcotest.int "four accelerators" 4 (List.length b.Flow.impls)

let test_all_sw_htg () =
  let g =
    Soc_htg.Htg.make ~name:"allsw"
      ~nodes:[ Soc_htg.Htg.task "a"; Soc_htg.Htg.task "b" ]
      ~edges:[ ("a", "b") ]
  in
  let spec = Htg_bridge.to_spec ~validate:false g in
  check Alcotest.int "empty system" 0 (List.length spec.Spec.nodes)

(* ------------------------------------------------------------------ *)
(* Quartus backend                                                     *)
(* ------------------------------------------------------------------ *)

let test_quartus_structure () =
  let q = Quartus.generate (Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4) in
  List.iter
    (fun frag -> check Alcotest.bool ("qsys has " ^ frag) true (Tstr.contains q frag))
    [ "package require -exact qsys"; "altera_hps"; "altera_msgdma"; "grayScale_0";
      "segment_0"; "save_system"; "quartus_sh --flow compile";
      "add_connection grayScale_0.imageOutCH computeHistogram_0.grayScaleImage" ]

let test_quartus_dma_per_crossing () =
  let q = Quartus.generate (Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4) in
  (* one mSGDMA per 'soc crossing: msgdma_0 (in) and msgdma_1 (out) *)
  check Alcotest.bool "msgdma_0" true (Tstr.contains q "add_instance msgdma_0");
  check Alcotest.bool "msgdma_1" true (Tstr.contains q "add_instance msgdma_1");
  check Alcotest.bool "no msgdma_2" false (Tstr.contains q "add_instance msgdma_2")

let test_quartus_comparable_volume () =
  (* The extensibility claim: a different vendor backend with the same
     command-per-element shape, within 2x of the Xilinx script size. *)
  let c = Quartus.compare_backends (Soc_apps.Graphs.arch_spec Soc_apps.Graphs.Arch4) in
  let ratio = float_of_int c.Quartus.altera_lines /. float_of_int c.Quartus.xilinx_lines in
  check Alcotest.bool "same order of magnitude" true (ratio > 0.2 && ratio < 2.0)

let test_quartus_deterministic () =
  let spec = Soc_apps.Graphs.fig4_spec in
  check Alcotest.string "stable output" (Quartus.generate spec) (Quartus.generate spec)

(* ------------------------------------------------------------------ *)
(* Interrupt-driven completion                                         *)
(* ------------------------------------------------------------------ *)

let lite_system () =
  let sys = Soc_platform.System.create () in
  ignore
    (Soc_platform.System.add_accel sys ~name:"ADD"
       (Soc_hls.Engine.synthesize Soc_apps.Filters.add_kernel).Soc_hls.Engine.fsmd);
  Soc_platform.Executive.create sys

let test_irq_wait_correct () =
  let exec = lite_system () in
  let module Exec = Soc_platform.Executive in
  Exec.set_arg exec ~accel:"ADD" ~port:"A" 30;
  Exec.set_arg exec ~accel:"ADD" ~port:"B" 12;
  Exec.start_accel exec "ADD";
  Exec.wait_accel_irq exec "ADD";
  check Alcotest.int "result via irq" 42 (Exec.get_arg exec ~accel:"ADD" ~port:"return_")

let test_irq_saves_bus_traffic () =
  let module Exec = Soc_platform.Executive in
  let run wait =
    let exec = lite_system () in
    Exec.set_arg exec ~accel:"ADD" ~port:"A" 1;
    Exec.set_arg exec ~accel:"ADD" ~port:"B" 2;
    Exec.start_accel exec "ADD";
    wait exec;
    exec.Exec.timeline.Exec.bus
  in
  let polled = run (fun e -> Exec.wait_accel e "ADD") in
  let irq = run (fun e -> Exec.wait_accel_irq e "ADD") in
  check Alcotest.bool "irq wait issues fewer bus transactions" true (irq <= polled)

(* ------------------------------------------------------------------ *)
(* Utilization report                                                  *)
(* ------------------------------------------------------------------ *)

let test_utilization_percentages () =
  let u = { Soc_hls.Report.lut = 5320; ff = 10640; bram18 = 28; dsp = 22 } in
  List.iter
    (fun (name, _, _, pct) ->
      check (Alcotest.float 0.01) (name ^ " at 10%") 10.0 pct)
    (Soc_hls.Report.utilization u)

let test_case_study_fits_the_device () =
  (* Every generated architecture must fit the Zedboard's XC7Z020, like the
     paper's bitstreams did. *)
  List.iter
    (fun arch ->
      let b =
        Flow.build (Soc_apps.Graphs.arch_spec arch)
          ~kernels:(Soc_apps.Graphs.arch_kernels arch ~width:48 ~height:48)
      in
      check Alcotest.bool
        (Soc_apps.Graphs.arch_name arch ^ " fits xc7z020")
        true
        (Soc_hls.Report.fits b.Flow.resources))
    Soc_apps.Graphs.all_archs

let test_oversized_detected () =
  let u = { Soc_hls.Report.lut = 1_000_000; ff = 0; bram18 = 0; dsp = 0 } in
  check Alcotest.bool "does not fit" false (Soc_hls.Report.fits u)

let suite =
  [
    ("htg bridge: fig1 -> fig4", `Quick, test_fig1_maps_to_fig4);
    ("htg bridge: sw nodes dropped", `Quick, test_sw_nodes_dropped);
    ("htg bridge: custom lite ports", `Quick, test_custom_lite_ports);
    ("htg bridge: derived spec flows", `Quick, test_derived_spec_flows_end_to_end);
    ("htg bridge: all-sw graph", `Quick, test_all_sw_htg);
    ("quartus structure", `Quick, test_quartus_structure);
    ("quartus dma per crossing", `Quick, test_quartus_dma_per_crossing);
    ("quartus comparable volume", `Quick, test_quartus_comparable_volume);
    ("quartus deterministic", `Quick, test_quartus_deterministic);
    ("irq wait correct", `Quick, test_irq_wait_correct);
    ("irq saves bus traffic", `Quick, test_irq_saves_bus_traffic);
    ("utilization percentages", `Quick, test_utilization_percentages);
    ("case study fits xc7z020", `Quick, test_case_study_fits_the_device);
    ("oversize detected", `Quick, test_oversized_detected);
  ]

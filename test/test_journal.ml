(* Crash-safety tests: the write-ahead journal, atomic artifact commits
   with verified integrity, quarantine/repair (doctor), the LRU disk cap,
   and the acceptance tentpole — the kill-point recovery campaign: kill
   the farm at EVERY journaled point of the Otsu batch, resume, and the
   result is bit-identical to an uninterrupted run with zero repeated HLS
   engine work. *)

module Farm = Soc_farm.Farm
module Jobgraph = Soc_farm.Jobgraph
module Cache = Soc_farm.Cache
module Chash = Soc_farm.Chash
module Journal = Soc_farm.Journal
module Fault = Soc_fault.Fault
module Atomic_io = Soc_util.Atomic_io
module Diag = Soc_util.Diag
module Graphs = Soc_apps.Graphs

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let w = 16
let h = 16

let entries () =
  List.map
    (fun arch ->
      { Jobgraph.spec = Graphs.arch_spec arch;
        kernels = Graphs.arch_kernels arch ~width:w ~height:h })
    Graphs.all_archs

let entry1 () =
  [ { Jobgraph.spec = Graphs.arch_spec Graphs.Arch1;
      kernels = Graphs.arch_kernels Graphs.Arch1 ~width:w ~height:h } ]

let digests (r : Farm.report) =
  List.map (fun (i, b) -> (i, Farm.build_digest b)) r.Farm.builds

let fresh_dir prefix =
  let d = Filename.temp_file prefix ".cache" in
  Sys.remove d;
  d

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file_raw path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let artifact_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".accel")
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Atomic_io                                                           *)
(* ------------------------------------------------------------------ *)

let test_atomic_io_roundtrip () =
  let dir = fresh_dir "socaio" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "out.txt" in
  Atomic_io.write_file path "hello\nworld";
  check Alcotest.string "contents" "hello\nworld" (read_file path);
  Atomic_io.write_file ~fsync:true path "v2";
  check Alcotest.string "overwrite" "v2" (read_file path);
  check Alcotest.int "no temp files left" 1 (Array.length (Sys.readdir dir));
  check Alcotest.bool "temp names recognized" true
    (Atomic_io.is_temp (Filename.basename (Atomic_io.temp_for path)));
  check Alcotest.bool "real names not temps" false (Atomic_io.is_temp "out.txt")

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let sample_events =
  [ Journal.Batch_start { key = "abc123"; jobs = 3 };
    Journal.Start { stage = "hls"; label = "hls:histogram"; key = "deadbeef00000000" };
    Journal.Done { stage = "hls"; label = "hls:histogram"; key = "deadbeef00000000" };
    Journal.Start { stage = "integrate"; label = "integrate:arch1"; key = "" };
    Journal.Failed { stage = "integrate"; label = "integrate:arch1"; reason = "boom\twith\ntabs" };
    Journal.Batch_done { ok = 0; failed = 1 } ]

let test_journal_roundtrip () =
  let dir = fresh_dir "socjrn" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir Journal.default_name in
  let j = Journal.open_ ~fsync:false path in
  List.iter (Journal.append j) sample_events;
  Journal.close j;
  let events, dropped = Journal.load path in
  check Alcotest.int "nothing dropped" 0 dropped;
  check Alcotest.int "all entries back" (List.length sample_events) (List.length events);
  check Alcotest.bool "events identical (escaping survives)" true (events = sample_events)

let test_journal_torn_tail () =
  let dir = fresh_dir "socjrn" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir Journal.default_name in
  let j = Journal.open_ ~fsync:false path in
  List.iter (Journal.append j) sample_events;
  Journal.close j;
  (* Tear the last line mid-write, as a power cut would. *)
  let raw = read_file path in
  write_file_raw path (String.sub raw 0 (String.length raw - 7));
  let events, dropped = Journal.load path in
  check Alcotest.int "torn line dropped" 1 dropped;
  check Alcotest.bool "valid prefix is the truth" true
    (events = List.filteri (fun i _ -> i < List.length sample_events - 1) sample_events);
  (* A corrupt middle line invalidates everything after it. *)
  let lines = String.split_on_char '\n' raw in
  let flipped =
    String.concat "\n"
      (List.mapi (fun i l -> if i = 1 && l <> "" then "X" ^ l else l) lines)
  in
  write_file_raw path flipped;
  let events2, dropped2 = Journal.load path in
  check Alcotest.int "only the prefix before the bad line survives" 1 (List.length events2);
  check Alcotest.bool "rest dropped" true (dropped2 >= 1)

let test_journal_status () =
  let st = Journal.status_of sample_events in
  check Alcotest.int "one completed" 1 (List.length st.Journal.completed);
  check Alcotest.bool "completed is the hls job" true
    (st.Journal.completed = [ ("hls", "hls:histogram", "deadbeef00000000") ]);
  check Alcotest.int "failed job is not in flight" 0 (List.length st.Journal.in_flight);
  check Alcotest.bool "batch done" true st.Journal.batch_done;
  let st2 =
    Journal.status_of
      [ Journal.Start { stage = "synth"; label = "synth:a"; key = "" } ]
  in
  check Alcotest.bool "unmatched start is in flight" true
    (st2.Journal.in_flight = [ ("synth", "synth:a", "") ] && not st2.Journal.batch_done)

let test_journal_seal () =
  let dir = fresh_dir "socjrn" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir Journal.default_name in
  let j = Journal.open_ ~fsync:false path in
  Journal.append j (List.hd sample_events);
  Journal.seal j;
  Journal.append j (Journal.Batch_done { ok = 9; failed = 9 });
  Journal.close j;
  let events, _ = Journal.load path in
  check Alcotest.int "appends after seal are dropped (simulated death)" 1 (List.length events)

let test_journal_fsck_compacts () =
  let dir = fresh_dir "socjrn" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir Journal.default_name in
  let j = Journal.open_ ~fsync:false path in
  List.iter (Journal.append j) sample_events;
  Journal.close j;
  let r = Journal.fsck path in
  check Alcotest.int "resolved starts folded away" 2 r.Journal.jfsck_compacted;
  check Alcotest.int "no corruption" 0 r.Journal.jfsck_dropped;
  (* The compacted journal still replays to the same status. *)
  let events, dropped = Journal.load path in
  check Alcotest.int "compacted journal is valid" 0 dropped;
  let st = Journal.status_of events in
  check Alcotest.bool "same completed set after compaction" true
    (st.Journal.completed = [ ("hls", "hls:histogram", "deadbeef00000000") ]);
  (* Idempotent: a second fsck has nothing to do. *)
  let r2 = Journal.fsck path in
  check Alcotest.int "second fsck compacts nothing" 0 r2.Journal.jfsck_compacted;
  (* Missing journal is an empty healthy one. *)
  let r3 = Journal.fsck (Filename.concat dir "nonexistent.wal") in
  check Alcotest.int "missing journal: empty" 0 r3.Journal.jfsck_entries

(* ------------------------------------------------------------------ *)
(* Artifact integrity: corruption -> quarantine -> rebuild             *)
(* ------------------------------------------------------------------ *)

let prop_corrupt_artifact_recovers =
  QCheck.Test.make
    ~name:"cache: corrupting any byte -> quarantine/stale + correct rebuild" ~count:10
    QCheck.(triple (int_range 0 65535) (int_range 0 7) bool)
    (fun (byte, bit, truncate) ->
      let dir = fresh_dir "socrot" in
      let clean = Farm.build_batch ~jobs:1 ~cache:(Cache.create ~disk_dir:dir ()) (entry1 ()) in
      let files = artifact_files dir in
      assert (files <> []);
      let victim = Filename.concat dir (List.nth files (byte mod List.length files)) in
      let raw = read_file victim in
      let rotted =
        if truncate then Fault.truncate_blob raw ~keep:(byte mod String.length raw)
        else Fault.flip_bit_in_blob raw ~byte ~bit
      in
      (* Bit rot bypasses the atomic writer on purpose. *)
      write_file_raw victim rotted;
      let c2 = Cache.create ~disk_dir:dir () in
      let r = Farm.build_batch ~jobs:1 ~cache:c2 (entry1 ()) in
      let st = Cache.stats c2 in
      digests r = digests clean
      && st.Cache.quarantined + st.Cache.stale >= 1
      && List.length r.Farm.builds = 1)

let test_stale_version_noted_once () =
  let dir = fresh_dir "socstale" in
  let clean = Farm.build_batch ~jobs:1 ~cache:(Cache.create ~disk_dir:dir ()) (entry1 ()) in
  (* Rewrite every artifact under an older format version; the payload
     digest still matches, so these are stale, not corrupt. *)
  let n_entries = List.length (artifact_files dir) in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let raw = read_file path in
      let nl = String.index raw '\n' in
      let header = String.sub raw 0 nl in
      let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
      match String.split_on_char ' ' header with
      | [ magic; _version; dg; len ] ->
        write_file_raw path
          (Printf.sprintf "%s %s %s %s\n%s" magic "soc-farm-chash-v0" dg len payload)
      | _ -> Alcotest.fail "unexpected artifact header")
    (artifact_files dir);
  let c2 = Cache.create ~disk_dir:dir () in
  let r = Farm.build_batch ~jobs:1 ~cache:c2 (entry1 ()) in
  let st = Cache.stats c2 in
  check Alcotest.bool "every stale read counted" true (st.Cache.stale >= n_entries);
  check Alcotest.int "none quarantined" 0 st.Cache.quarantined;
  check Alcotest.bool "stale entries re-synthesized, bit-identical" true
    (digests r = digests clean);
  let io402 = List.filter (fun d -> d.Diag.code = "IO402") (Cache.diags c2) in
  check Alcotest.int "version mismatch noted exactly once per run" 1 (List.length io402)

let test_doctor_fsck_repairs () =
  let dir = fresh_dir "socfsck" in
  ignore (Farm.build_batch ~jobs:1 ~cache:(Cache.create ~disk_dir:dir ()) (entry1 ()));
  let files = artifact_files dir in
  let n = List.length files in
  (* One corrupt entry, one orphaned temp from an interrupted commit. *)
  let victim = Filename.concat dir (List.hd files) in
  write_file_raw victim (Fault.flip_bit_in_blob (read_file victim) ~byte:100 ~bit:3);
  write_file_raw (Filename.concat dir "x.accel.tmp.123.0" ) "partial";
  let r = Cache.fsck ~dir in
  check Alcotest.int "all entries checked" n r.Cache.fsck_checked;
  check Alcotest.int "healthy entries ok" (n - 1) r.Cache.fsck_ok;
  check Alcotest.int "corrupt entry quarantined" 1 (List.length r.Cache.fsck_quarantined);
  check Alcotest.int "orphan temp removed" 1 (List.length r.Cache.fsck_orphans);
  check Alcotest.bool "quarantine keeps the evidence" true
    (Sys.file_exists (Filename.concat dir "quarantine"));
  (* Doctor is idempotent and the repaired cache verifies clean. *)
  let r2 = Cache.fsck ~dir in
  check Alcotest.int "second pass: nothing to repair" (n - 1) r2.Cache.fsck_ok;
  check Alcotest.int "second pass: no quarantines" 0 (List.length r2.Cache.fsck_quarantined)

let prop_doctor_never_raises =
  QCheck.Test.make ~name:"doctor: never raises on fuzzed cache dirs" ~count:20
    QCheck.(pair (int_range 0 1000000) (int_range 1 200))
    (fun (seed, len) ->
      let dir = fresh_dir "socfuzz" in
      Unix.mkdir dir 0o755;
      (* Deterministic garbage: wrong headers, binary noise, empty files,
         truncated temps, and a rotted journal. *)
      let rng = ref seed in
      let next () =
        rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF;
        !rng
      in
      let blob n = String.init n (fun _ -> Char.chr (next () land 0xFF)) in
      write_file_raw (Filename.concat dir "a.accel") (blob len);
      write_file_raw (Filename.concat dir "b.accel") ("soc-accel " ^ blob len);
      write_file_raw (Filename.concat dir "c.accel") "";
      write_file_raw (Filename.concat dir "d.accel.tmp.9.9") (blob (len / 2));
      write_file_raw (Filename.concat dir Journal.default_name) (blob len);
      let cr = Cache.fsck ~dir in
      let jr = Journal.fsck (Filename.concat dir Journal.default_name) in
      cr.Cache.fsck_checked = 3
      && List.length cr.Cache.fsck_quarantined
         + List.length cr.Cache.fsck_stale
         = 3
      && jr.Journal.jfsck_entries = 0)

(* ------------------------------------------------------------------ *)
(* LRU disk cap                                                        *)
(* ------------------------------------------------------------------ *)

let test_lru_cap_spares_protected () =
  let dir = fresh_dir "soclru" in
  let cache = Cache.create ~disk_dir:dir ~max_mb:1 () in
  let kernel = Soc_apps.Otsu.histogram_kernel ~pixels:(w * h) in
  let _, accel =
    Cache.synthesize cache ~config:Soc_hls.Engine.default_config kernel
  in
  let entry_bytes =
    let f = Filename.concat dir (List.hd (artifact_files dir)) in
    (Unix.stat f).Unix.st_size
  in
  (* Enough entries to overflow the 1 MB cap twice over. *)
  let n = min 400 (2 * 1024 * 1024 / entry_bytes + 2) in
  let keys = List.init n (fun i -> Chash.digest (Printf.sprintf "lru-filler-%d" i)) in
  let protected_key = List.hd keys in
  Cache.protect cache protected_key;
  List.iter (fun k -> Cache.store cache k accel) keys;
  let st = Cache.stats cache in
  check Alcotest.bool "cap forced evictions" true (st.Cache.evictions > 0);
  check Alcotest.bool "eviction logged (IO410)" true
    (List.exists (fun d -> d.Diag.code = "IO410") (Cache.diags cache));
  (* A fresh cache sees what actually survived on disk. *)
  let c2 = Cache.create ~disk_dir:dir () in
  check Alcotest.bool "journal-protected entry never evicted" true
    (Cache.find c2 protected_key <> None);
  check Alcotest.bool "unprotected entries were evicted" true
    (List.exists (fun k -> Cache.find c2 k = None) (List.tl keys))

(* ------------------------------------------------------------------ *)
(* The kill-point recovery campaign (tentpole)                         *)
(* ------------------------------------------------------------------ *)

(* Every journaled point of the Otsu batch: each stage category crossed
   with every job index it has. *)
let kill_points () =
  let g = Jobgraph.plan (entries ()) in
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun (n : Jobgraph.node) ->
      Hashtbl.replace counts n.Jobgraph.cat
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts n.Jobgraph.cat)))
    g.Jobgraph.nodes;
  Hashtbl.fold
    (fun cat n acc -> List.init n (fun k -> (cat, k)) @ acc)
    counts []
  |> List.sort compare

let test_kill_point_campaign () =
  let clean = Farm.build_batch ~jobs:1 (entries ()) in
  let clean_digests = digests clean in
  let expected_runs = clean.Farm.stats.Farm.distinct_kernels in
  let points = kill_points () in
  check Alcotest.bool "campaign covers every stage of every arch" true
    (List.length points >= 20);
  List.iter
    (fun (stage, k) ->
      let where = Printf.sprintf "%s:%d" stage k in
      let dir = fresh_dir "sockill" in
      let jpath = Filename.concat dir Journal.default_name in
      let e0 = Soc_hls.Engine.invocation_count () in
      (* Run 1: killed the instant job k of [stage] goes in-flight. *)
      let j = Journal.open_ ~fsync:false jpath in
      (match
         Farm.build_batch ~jobs:1
           ~cache:(Cache.create ~disk_dir:dir ())
           ~journal:j
           ~kill:(Fault.Kill_at (stage, k))
           (entries ())
       with
      | _ -> Alcotest.failf "%s: kill point did not fire" where
      | exception Fault.Killed (s, k') ->
        check Alcotest.string (where ^ ": killed at armed stage") stage s;
        check Alcotest.int (where ^ ": killed at armed index") k k');
      (* The killed job is journaled in-flight, never done. *)
      let st = Journal.status_of (fst (Journal.load jpath)) in
      check Alcotest.bool (where ^ ": victim is in flight") true
        (List.exists (fun (s, _, _) -> s = stage) st.Journal.in_flight);
      check Alcotest.bool (where ^ ": batch not done") false st.Journal.batch_done;
      (* Run 2: resume. *)
      let j2 = Journal.open_ ~fsync:false ~resume:true jpath in
      let r =
        Farm.build_batch ~jobs:1 ~cache:(Cache.create ~disk_dir:dir ()) ~journal:j2
          (entries ())
      in
      Journal.close j2;
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
        (where ^ ": resume == uninterrupted (bit-identical)")
        clean_digests (digests r);
      (* Zero repeated HLS work: killed + resumed runs together invoke the
         engine exactly once per distinct kernel. *)
      check Alcotest.int
        (where ^ ": no HLS job ran twice")
        expected_runs
        (Soc_hls.Engine.invocation_count () - e0))
    points

let prop_random_kill_resume =
  (* Same property, random kill point and worker count — crashes under
     parallelism are also recoverable. *)
  QCheck.Test.make ~name:"farm: random kill + parallel resume is bit-identical" ~count:6
    QCheck.(pair (int_range 0 1000000) (int_range 1 4))
    (fun (seed, jobs) ->
      let clean = Farm.build_batch ~jobs:1 (entries ()) in
      let points = kill_points () in
      match Fault.pick_kill_point ~seed points with
      | None -> QCheck.assume_fail ()
      | Some (Fault.Kill_at (_, _) as kp) -> (
        let dir = fresh_dir "sockillq" in
        let jpath = Filename.concat dir Journal.default_name in
        let j = Journal.open_ ~fsync:false jpath in
        match
          Farm.build_batch ~jobs:1 ~cache:(Cache.create ~disk_dir:dir ()) ~journal:j
            ~kill:kp (entries ())
        with
        | _ -> false
        | exception Fault.Killed _ ->
          let j2 = Journal.open_ ~fsync:false ~resume:true jpath in
          let r =
            Farm.build_batch ~jobs ~cache:(Cache.create ~disk_dir:dir ()) ~journal:j2
              (entries ())
          in
          Journal.close j2;
          digests r = digests clean))

let suite =
  [ ("atomic io: write + rename, no temps", `Quick, test_atomic_io_roundtrip);
    ("journal: round-trip", `Quick, test_journal_roundtrip);
    ("journal: torn tail dropped", `Quick, test_journal_torn_tail);
    ("journal: replay status", `Quick, test_journal_status);
    ("journal: seal = simulated death", `Quick, test_journal_seal);
    ("journal: fsck verifies + compacts", `Quick, test_journal_fsck_compacts);
    qtest prop_corrupt_artifact_recovers;
    ("cache: stale version noted once", `Quick, test_stale_version_noted_once);
    ("doctor: quarantine + orphan repair", `Quick, test_doctor_fsck_repairs);
    qtest prop_doctor_never_raises;
    ("cache: LRU cap spares journal-live entries", `Quick, test_lru_cap_spares_protected);
    ("kill-point campaign: resume == uninterrupted", `Slow, test_kill_point_campaign);
    qtest prop_random_kill_resume ]

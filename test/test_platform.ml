(* Tests for the platform co-simulation: GPP cost model, accelerator
   adapter (AXI-Lite control protocol), system composition, executive and
   driver API, deadlock detection. *)

open Soc_kernel.Ast.Build
module P = Soc_platform
module Exec = Soc_platform.Executive

let check = Alcotest.check

let adder = Soc_apps.Filters.add_kernel

let passthrough n =
  {
    Soc_kernel.Ast.kname = "pass";
    ports = [ in_stream "xin" Soc_kernel.Ty.U32; out_stream "xout" Soc_kernel.Ty.U32 ];
    locals = [ ("i", Soc_kernel.Ty.U32); ("x", Soc_kernel.Ty.U32) ];
    arrays = [];
    body =
      [ for_ "i" ~from:(int 0) ~below:(int n) [ pop "x" "xin"; push "xout" (v "x" +: int 1) ] ];
  }

let synth k = (Soc_hls.Engine.synthesize k).Soc_hls.Engine.fsmd

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_conversion () =
  let c = P.Config.zedboard in
  (* 666.7 MHz GPP work shrinks when expressed in 100 MHz PL cycles. *)
  check Alcotest.bool "conversion shrinks" true (P.Config.gpp_to_pl_cycles c 1000.0 < 1000);
  check (Alcotest.float 0.001) "cycles to us" 1.0 (P.Config.pl_cycles_to_us c 100)

(* ------------------------------------------------------------------ *)
(* GPP model                                                           *)
(* ------------------------------------------------------------------ *)

let test_gpp_runs_kernel_over_dram () =
  let dram = Soc_axi.Dram.create ~words:1024 () in
  Soc_axi.Dram.write_block dram ~addr:0 [| 1; 2; 3; 4 |];
  let r =
    P.Gpp.run_task P.Config.zedboard dram (passthrough 4) ~scalars:[]
      ~stream_bufs_in:[ ("xin", (0, 4)) ]
      ~stream_bufs_out:[ ("xout", (16, 4)) ]
  in
  check (Alcotest.list Alcotest.int) "incremented in DRAM" [ 2; 3; 4; 5 ]
    (Array.to_list (Soc_axi.Dram.read_block dram ~addr:16 ~len:4));
  check Alcotest.bool "charged time" true (r.P.Gpp.pl_cycles > 0)

let test_gpp_buffer_overflow_detected () =
  let dram = Soc_axi.Dram.create ~words:1024 () in
  Soc_axi.Dram.write_block dram ~addr:0 [| 1; 2; 3; 4 |];
  match
    P.Gpp.run_task P.Config.zedboard dram (passthrough 4) ~scalars:[]
      ~stream_bufs_in:[ ("xin", (0, 4)) ]
      ~stream_bufs_out:[ ("xout", (16, 2)) ]
  with
  | exception P.Gpp.Software_fault _ -> ()
  | _ -> Alcotest.fail "expected software fault"

let test_gpp_cost_scales_with_work () =
  let dram = Soc_axi.Dram.create ~words:4096 () in
  let cost n =
    (P.Gpp.run_task P.Config.zedboard dram (passthrough n) ~scalars:[]
       ~stream_bufs_in:[ ("xin", (0, n)) ]
       ~stream_bufs_out:[ ("xout", (2048, n)) ])
      .P.Gpp.pl_cycles
  in
  check Alcotest.bool "10x data costs more" true (cost 100 > cost 10)

(* ------------------------------------------------------------------ *)
(* System + driver API                                                 *)
(* ------------------------------------------------------------------ *)

let lite_system () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"ADD" (synth adder));
  (sys, Exec.create sys)

let test_lite_accelerator_call () =
  let _, exec = lite_system () in
  Exec.set_arg exec ~accel:"ADD" ~port:"A" 40;
  Exec.set_arg exec ~accel:"ADD" ~port:"B" 2;
  Exec.start_accel exec "ADD";
  Exec.wait_accel exec "ADD";
  check Alcotest.int "result" 42 (Exec.get_arg exec ~accel:"ADD" ~port:"return_");
  check Alcotest.bool "bus time charged" true (Exec.elapsed_cycles exec > 0)

let test_lite_accelerator_rerun () =
  let _, exec = lite_system () in
  let call a b =
    Exec.set_arg exec ~accel:"ADD" ~port:"A" a;
    Exec.set_arg exec ~accel:"ADD" ~port:"B" b;
    Exec.start_accel exec "ADD";
    Exec.wait_accel exec "ADD";
    Exec.get_arg exec ~accel:"ADD" ~port:"return_"
  in
  check Alcotest.int "first" 3 (call 1 2);
  check Alcotest.int "second" 300 (call 100 200)

let test_duplicate_accel_rejected () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"X" (synth adder));
  match P.System.add_accel sys ~name:"X" (synth adder) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate rejection"

let diag_testable =
  Alcotest.testable Soc_util.Diag.pp (fun a b -> Soc_util.Diag.compare a b = 0)

let test_unbound_stream_reported () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"P" (synth (passthrough 4)));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "both ports unbound"
    [ ("SOC050", "P.in:xin"); ("SOC050", "P.out:xout") ]
    (List.sort compare
       (List.map
          (fun (d : Soc_util.Diag.t) -> (d.Soc_util.Diag.code, d.Soc_util.Diag.subject))
          (P.System.validate sys)))

let test_duplicate_dma_channel_reported () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"P" (synth (passthrough 4)));
  let name, dma = P.System.add_mm2s sys ~dst:("P", "xin") () in
  ignore (P.System.add_s2mm sys ~src:("P", "xout") ());
  (* A buggy integration frontend registering the same channel twice. *)
  sys.P.System.mm2s <- (name, dma) :: sys.P.System.mm2s;
  check Alcotest.bool "duplicate flagged" true
    (List.exists
       (fun (d : Soc_util.Diag.t) ->
         d.Soc_util.Diag.code = "SOC051"
         && d.Soc_util.Diag.subject = "dma_mm2s->P.xin")
       (P.System.validate sys))

let test_unattached_fifo_reported () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"P" (synth (passthrough 4)));
  ignore (P.System.add_mm2s sys ~dst:("P", "xin") ());
  ignore (P.System.add_s2mm sys ~src:("P", "xout") ());
  ignore (P.System.new_fifo sys ~name:"orphan" ());
  (match P.System.validate sys with
  | [ d ] ->
    check Alcotest.string "orphan code" "SOC052" d.Soc_util.Diag.code;
    check Alcotest.string "orphan subject" "orphan" d.Soc_util.Diag.subject;
    check Alcotest.bool "orphan is a warning" true
      (d.Soc_util.Diag.severity = Soc_util.Diag.Warning)
  | ds ->
    Alcotest.failf "expected exactly the orphan warning, got %d diagnostics"
      (List.length ds))

let test_bus_error () =
  let _, exec = lite_system () in
  match Exec.bus_read exec 0x10 with
  | exception Exec.Bus_error { addr = 0x10; dir = `Read; kind = `Decode } -> ()
  | _ -> Alcotest.fail "expected bus error"

let test_bus_error_direction () =
  let _, exec = lite_system () in
  match Exec.bus_write exec 0x10 1 with
  | exception Exec.Bus_error { addr = 0x10; dir = `Write; kind = `Decode } -> ()
  | _ -> Alcotest.fail "expected bus error"

let test_exception_printers () =
  let has needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  let s =
    Printexc.to_string (Exec.Bus_error { addr = 0x40000010; dir = `Read; kind = `Slverr })
  in
  check Alcotest.bool "bus error printer names address" true (has "0x40000010" s);
  check Alcotest.bool "bus error printer names SLVERR" true (has "SLVERR" s);
  let s = Printexc.to_string (Exec.Deadlock { cycle = 99; detail = [ "P: done=false" ] }) in
  check Alcotest.bool "deadlock printer has cycle" true (has "99" s);
  check Alcotest.bool "deadlock printer has detail" true (has "P: done=false" s)

(* ------------------------------------------------------------------ *)
(* Streaming phase through DMA                                         *)
(* ------------------------------------------------------------------ *)

let stream_system n =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"P" (synth (passthrough n)));
  let in_ch, _ = P.System.add_mm2s sys ~dst:("P", "xin") () in
  let out_ch, _ = P.System.add_s2mm sys ~src:("P", "xout") () in
  check (Alcotest.list diag_testable) "fully bound" [] (P.System.validate sys);
  (sys, Exec.create sys, in_ch, out_ch)

let test_stream_phase_end_to_end () =
  let n = 64 in
  let sys, exec, in_ch, out_ch = stream_system n in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0
    (Array.init n (fun i -> i * 3));
  Exec.start_accel exec "P";
  Exec.start_read_dma exec ~channel:out_ch ~addr:1024 ~len:n;
  Exec.start_write_dma exec ~channel:in_ch ~addr:0 ~len:n;
  Exec.run_phase exec ~accels:[ "P" ];
  check (Alcotest.list Alcotest.int) "incremented through fabric"
    (List.init n (fun i -> (i * 3) + 1))
    (Array.to_list (Soc_axi.Dram.read_block (Exec.dram exec) ~addr:1024 ~len:n));
  check (Alcotest.list Alcotest.string) "no protocol violations" []
    (List.map (Format.asprintf "%a" Soc_axi.Stream_rules.pp_violation)
       (P.System.protocol_violations sys))

let test_blocking_dma_calls () =
  let n = 16 in
  let _, exec, in_ch, out_ch = stream_system n in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 (Array.init n Fun.id);
  Exec.start_accel exec "P";
  (* Blocking readDMA must be armed before writeDMA finishes pushing,
     otherwise beats pile into the FIFO: use non-blocking arm then blocking
     drain, like the generated host code does. *)
  Exec.start_read_dma exec ~channel:out_ch ~addr:512 ~len:n;
  (* Blocking writeDMA returns once the input buffer is fully streamed. *)
  Exec.write_dma exec ~channel:in_ch ~addr:0 ~len:n;
  Exec.run_phase exec ~accels:[ "P" ];
  check Alcotest.int "last word" n
    (Soc_axi.Dram.read (Exec.dram exec) (512 + n - 1))

let test_timeline_components () =
  let n = 32 in
  let _, exec, in_ch, out_ch = stream_system n in
  Exec.start_accel exec "P";
  Exec.start_read_dma exec ~channel:out_ch ~addr:512 ~len:n;
  Exec.start_write_dma exec ~channel:in_ch ~addr:0 ~len:n;
  Exec.run_phase exec ~accels:[ "P" ];
  let tl = exec.Exec.timeline in
  check Alcotest.bool "bus time from start_accel" true (tl.Exec.bus > 0);
  check Alcotest.bool "hw time" true (tl.Exec.hw > 0);
  check Alcotest.int "total = sum of parts" tl.Exec.total (Exec.elapsed_cycles exec)

let test_deadlock_detection () =
  (* Accelerator waits for 4 beats but the DMA only delivers 2. *)
  let sys = P.System.create ~config:{ P.Config.zedboard with P.Config.deadlock_window = 2000 } () in
  ignore (P.System.add_accel sys ~name:"P" (synth (passthrough 4)));
  let in_ch, _ = P.System.add_mm2s sys ~dst:("P", "xin") () in
  let _out_ch, _ = P.System.add_s2mm sys ~src:("P", "xout") () in
  let exec = Exec.create sys in
  Exec.start_accel exec "P";
  Exec.start_write_dma exec ~channel:in_ch ~addr:0 ~len:2;
  match Exec.run_phase exec ~accels:[ "P" ] with
  | exception Exec.Deadlock _ -> ()
  | () -> Alcotest.fail "expected deadlock"

let test_fifo_too_small_deadlocks () =
  (* Producer pushes 32 beats into an 8-deep FIFO with no consumer armed:
     classic sizing bug, must be caught by the deadlock detector. *)
  let config =
    { P.Config.zedboard with P.Config.default_fifo_depth = 8; deadlock_window = 3000 }
  in
  let sys = P.System.create ~config () in
  ignore (P.System.add_accel sys ~name:"P" (synth (passthrough 32)));
  let in_ch, _ = P.System.add_mm2s sys ~dst:("P", "xin") () in
  let _ = P.System.add_s2mm sys ~src:("P", "xout") () in
  let exec = Exec.create sys in
  Exec.start_accel exec "P";
  Exec.start_write_dma exec ~channel:in_ch ~addr:0 ~len:32;
  (* S2MM never started: output fifo fills, accel stalls, input fifo fills,
     MM2S stalls. *)
  match Exec.run_phase exec ~accels:[ "P" ] with
  | exception Exec.Deadlock { cycle; detail } ->
    check Alcotest.bool "detail lists fifo stats" true (detail <> []);
    check Alcotest.bool "cycle is plausible" true (cycle > 3000);
    (* The detail must name the stuck accelerator and its state, not just
       say "deadlock". *)
    check Alcotest.bool "detail names the accelerator" true
      (List.exists
         (fun line ->
           String.length line >= 2 && String.sub line 0 2 = "P:"
           && List.exists (fun s -> s = line)
                [ "P: done=false idle=false"; "P: done=false idle=true" ])
         detail)
  | () -> Alcotest.fail "expected deadlock"

let test_accel_to_accel_link () =
  let n = 16 in
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"A" (synth (passthrough n)));
  ignore (P.System.add_accel sys ~name:"B" (synth { (passthrough n) with Soc_kernel.Ast.kname = "pass2" }));
  ignore (P.System.link_stream sys ~src:("A", "xout") ~dst:("B", "xin") ());
  let in_ch, _ = P.System.add_mm2s sys ~dst:("A", "xin") () in
  let out_ch, _ = P.System.add_s2mm sys ~src:("B", "xout") () in
  let exec = Exec.create sys in
  Soc_axi.Dram.write_block (Exec.dram exec) ~addr:0 (Array.init n Fun.id);
  Exec.start_accel exec "A";
  Exec.start_accel exec "B";
  Exec.start_read_dma exec ~channel:out_ch ~addr:256 ~len:n;
  Exec.start_write_dma exec ~channel:in_ch ~addr:0 ~len:n;
  Exec.run_phase exec ~accels:[ "A"; "B" ];
  check (Alcotest.list Alcotest.int) "two increments"
    (List.init n (fun i -> i + 2))
    (Array.to_list (Soc_axi.Dram.read_block (Exec.dram exec) ~addr:256 ~len:n))

let test_double_driven_port_reported () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"A" (synth (passthrough 4)));
  ignore
    (P.System.add_accel sys ~name:"B"
       (synth { (passthrough 4) with Soc_kernel.Ast.kname = "pass2" }));
  let link = P.System.link_stream sys ~src:("A", "xout") ~dst:("B", "xin") () in
  ignore (P.System.add_mm2s sys ~dst:("A", "xin") ());
  ignore (P.System.add_s2mm sys ~src:("B", "xout") ());
  check (Alcotest.list diag_testable) "consistent before injection" []
    (P.System.validate sys);
  (* A buggy frontend aiming a DMA channel at the FIFO that A already
     drives: B.xin now has two writers. *)
  let rogue =
    Soc_axi.Dma.create_mm2s ~name:"rogue" ~dram:sys.P.System.dram ~dest:link
  in
  sys.P.System.mm2s <- ("rogue", rogue) :: sys.P.System.mm2s;
  check Alcotest.bool "double-driven flagged" true
    (List.exists
       (fun (d : Soc_util.Diag.t) ->
         d.Soc_util.Diag.code = "SOC053"
         && d.Soc_util.Diag.subject = "B.xin"
         && d.Soc_util.Diag.severity = Soc_util.Diag.Error)
       (P.System.validate sys))

let test_double_bind_rejected () =
  let sys = P.System.create () in
  ignore (P.System.add_accel sys ~name:"P" (synth (passthrough 4)));
  ignore (P.System.add_mm2s sys ~dst:("P", "xin") ());
  match P.System.add_mm2s sys ~dst:("P", "xin") () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let suite =
  [
    ("clock conversion", `Quick, test_clock_conversion);
    ("gpp task over dram", `Quick, test_gpp_runs_kernel_over_dram);
    ("gpp buffer overflow fault", `Quick, test_gpp_buffer_overflow_detected);
    ("gpp cost scales", `Quick, test_gpp_cost_scales_with_work);
    ("axi-lite accelerator call", `Quick, test_lite_accelerator_call);
    ("axi-lite accelerator rerun", `Quick, test_lite_accelerator_rerun);
    ("duplicate accel rejected", `Quick, test_duplicate_accel_rejected);
    ("unbound streams reported", `Quick, test_unbound_stream_reported);
    ("duplicate dma channel reported", `Quick, test_duplicate_dma_channel_reported);
    ("unattached fifo reported", `Quick, test_unattached_fifo_reported);
    ("double-driven port reported", `Quick, test_double_driven_port_reported);
    ("bus error", `Quick, test_bus_error);
    ("bus error carries direction", `Quick, test_bus_error_direction);
    ("exception printers", `Quick, test_exception_printers);
    ("stream phase end to end", `Quick, test_stream_phase_end_to_end);
    ("blocking dma calls", `Quick, test_blocking_dma_calls);
    ("timeline accounting", `Quick, test_timeline_components);
    ("deadlock: missing data", `Quick, test_deadlock_detection);
    ("deadlock: fifo too small", `Quick, test_fifo_too_small_deadlocks);
    ("accel-to-accel link", `Quick, test_accel_to_accel_link);
    ("double bind rejected", `Quick, test_double_bind_rejected);
  ]

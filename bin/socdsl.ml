(* socdsl: command-line front end of the task-graph DSL tool.

   Mirrors the designer-facing surface of the paper's tool without needing
   kernels: parse and validate DSL sources, pretty-print them, generate the
   Vivado Tcl for either backend version, the device tree, the C API, the
   block diagram, and the conciseness metrics of Section VI.C.

     socdsl check design.tg
     socdsl print design.tg
     socdsl tcl design.tg --backend 2015.3
     socdsl devicetree design.tg
     socdsl api design.tg
     socdsl diagram design.tg --format dot
     socdsl metrics design.tg
     socdsl demo              # emits the paper's Listing 4

   Use "-" as the file to read from stdin. *)

open Cmdliner

let read_source path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let load path =
  match read_source path with
  | exception Sys_error msg -> Error msg
  | source -> (
    match Soc_core.Parser.parse_result source with
    | Ok spec -> Ok spec
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("socdsl: " ^ msg);
    exit 1

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"DSL source file (- for stdin).")

(* Every generator that can write a file goes through the shared atomic
   writer: output is committed with temp + rename, so a crash mid-write
   never leaves a torn artifact where a good one should be. *)
let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
       ~doc:"Write the output atomically to $(docv) instead of stdout.")

let emit output s =
  match output with
  | None -> print_string s
  | Some path ->
    Soc_util.Atomic_io.write_file path s;
    Printf.printf "wrote %s\n" path

(* Global deterministic seed, shared by every subcommand that involves any
   randomness (chaos campaigns) or emits a report (build, farm): the
   effective seed is always printed, so any run can be reproduced. *)
let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
       ~doc:"Deterministic seed; every report prints the effective value.")

(* ---------------- check ---------------- *)

(* The built-in kernel library: node names from the case studies resolve to
   their kernels so a .tg file can be pushed through the whole flow from
   the command line. *)
let builtin_kernels () =
  let w = 32 and h = 32 in
  Soc_apps.Otsu.kernels ~width:w ~height:h
  @ Soc_apps.Graphs.fig4_kernels ~width:w ~height:h
  @ Soc_apps.Xtea.loopback_kernels ~blocks:(w * h / 2)
  @ Soc_apps.Fir.pipeline_kernels ~samples:(w * h)

let check_cmd =
  let module Diag = Soc_util.Diag in
  (* Diagnostics of one file: SOC000 when the source does not even parse,
     the full analyzer stream otherwise. *)
  let diags_of_file ~graph_only file =
    match read_source file with
    | exception Sys_error msg ->
      prerr_endline ("socdsl: " ^ msg);
      exit 2
    | source -> (
      let parse_diag ~line ~col msg =
        [ Diag.error
            ~span:{ Diag.line; col }
            ~code:"SOC000" ~subject:file msg ]
      in
      match Soc_core.Parser.parse ~validate:false source with
      | exception Soc_core.Parser.Parse_error (msg, line, col) ->
        parse_diag ~line ~col msg
      | exception Soc_core.Lexer.Lex_error (msg, line, col) ->
        parse_diag ~line ~col msg
      | spec ->
        (* The analyzer ignores kernels for nodes outside the spec and
           reports SOC020 for spec nodes the library cannot resolve. *)
        let kernels = if graph_only then [] else builtin_kernels () in
        Soc_analysis.Analyze.run ~kernels spec)
  in
  (* RTL static verification of one netlist: lint, then — only when the
     lint found no errors (a multi-driven or cyclic netlist cannot be
     lowered meaningfully) — lower to an instruction tape and run the
     translation validator after lowering and after every optimizer
     pass. *)
  let rtl_diags_of_net ~subject net =
    let lint = Soc_rtl.Lint.check net in
    if Diag.has_errors lint then lint
    else
      lint
      @
      match Soc_rtl_compile.Csim.compile_tape net with
      | (_ : Soc_rtl_compile.Tape.t) -> []
      | exception Soc_rtl_compile.Verify.Tape_invalid err ->
        [ Soc_rtl_compile.Verify.to_diag ~subject err ]
  in
  (* [--rtl] dispatch: a [.ntl] file is a netlist to verify directly; a
     DSL source is front-end checked, then every node's kernel is
     synthesized and its generated netlist verified. *)
  let rtl_diags_of_file ~graph_only file =
    if Filename.check_suffix file ".ntl" then
      match Soc_rtl.Netlist_reader.parse_file file with
      | exception Sys_error msg ->
        prerr_endline ("socdsl: " ^ msg);
        exit 2
      | exception Soc_rtl.Netlist_reader.Parse_error msg ->
        [ Diag.error ~code:"SOC000" ~subject:file msg ]
      | net -> rtl_diags_of_net ~subject:file net
    else
      let front = diags_of_file ~graph_only file in
      if Diag.has_errors front then front
      else
        match read_source file with
        | exception Sys_error msg ->
          prerr_endline ("socdsl: " ^ msg);
          exit 2
        | source -> (
          match Soc_core.Parser.parse ~validate:false source with
          | exception _ -> front (* already reported above *)
          | spec ->
            let kernels = builtin_kernels () in
            front
            @ List.concat_map
                (fun (node : Soc_core.Spec.node_spec) ->
                  match List.assoc_opt node.Soc_core.Spec.node_name kernels with
                  | None -> [] (* unresolved kernels are SOC020, in [front] *)
                  | Some k ->
                    let accel = Soc_hls.Engine.synthesize k in
                    rtl_diags_of_net
                      ~subject:(file ^ ":" ^ node.Soc_core.Spec.node_name)
                      accel.Soc_hls.Engine.fsmd.netlist)
                spec.Soc_core.Spec.nodes)
  in
  let run files format werror ignored graph_only codes explain rtl =
    (match explain with
    | None -> ()
    | Some code -> (
      match Soc_analysis.Analyze.explain code with
      | Some text ->
        print_endline text;
        exit 0
      | None ->
        Printf.eprintf "socdsl: unknown diagnostic code %S (see --codes)\n" code;
        exit 2));
    if codes then begin
      List.iter
        (fun (code, doc) -> Printf.printf "%s  %s\n" code doc)
        Soc_analysis.Analyze.code_table;
      exit 0
    end;
    if files = [] then begin
      prerr_endline "socdsl: no input files (or pass --codes)";
      exit 2
    end;
    let per_file =
      List.map
        (fun file ->
          let ds =
            (if rtl then rtl_diags_of_file ~graph_only file
             else diags_of_file ~graph_only file)
            |> Diag.suppress ~codes:ignored
            |> fun ds -> if werror then Diag.promote_warnings ds else ds
          in
          (file, Diag.sort ds))
        files
    in
    (match format with
    | `Text ->
      List.iter
        (fun (file, ds) ->
          List.iter (fun d -> print_endline (Diag.to_string ~file d)) ds;
          Printf.printf "%s: %s\n" file
            (if ds = [] then "clean"
             else
               Printf.sprintf "%d error(s), %d warning(s)" (Diag.error_count ds)
                 (Diag.warning_count ds)))
        per_file
    | `Json ->
      let all =
        List.concat_map
          (fun (file, ds) -> List.map (Diag.to_json ~file) ds)
          per_file
      in
      print_endline
        (if all = [] then "[]"
         else "[\n  " ^ String.concat ",\n  " all ^ "\n]"));
    if List.exists (fun (_, ds) -> Diag.has_errors ds) per_file then exit 1
  in
  let files_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"FILE"
         ~doc:"DSL source files (- for stdin).")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let werror_arg =
    Arg.(value & flag & info [ "Werror" ]
         ~doc:"Treat warnings as errors (after --ignore filtering).")
  in
  let ignore_arg =
    Arg.(value & opt (list string) [] & info [ "ignore" ] ~docv:"CODES"
         ~doc:"Comma-separated diagnostic codes to suppress, e.g. SOC032,RES211.")
  in
  let graph_only_arg =
    Arg.(value & flag & info [ "graph-only" ]
         ~doc:"Skip kernel-level checks (rates, typecheck, resources); graph \
               and address-map checks only.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ]
         ~doc:"List every stable diagnostic code with its meaning and exit.")
  in
  let explain_arg =
    Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"CODE"
         ~doc:"Print a one-paragraph description of a diagnostic code and exit.")
  in
  let rtl_arg =
    Arg.(value & flag & info [ "rtl" ]
         ~doc:"RTL static verification: netlist lint (RTL50x) plus \
               instruction-tape translation validation after lowering and \
               after every optimizer pass (RTL51x). $(b,.ntl) files are \
               verified directly; DSL sources are front-end checked, then \
               every node's kernel is synthesized and its generated netlist \
               verified.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze DSL sources: graph well-formedness, kernel \
          interface and type checks, SDF-style stream rate/deadlock analysis, \
          address-map and resource-budget checks; with $(b,--rtl), netlist \
          lint and tape translation validation. Exits 1 if any error is \
          found, 0 otherwise.")
    Term.(const run $ files_arg $ format_arg $ werror_arg $ ignore_arg
          $ graph_only_arg $ codes_arg $ explain_arg $ rtl_arg)

(* ---------------- print ---------------- *)

let print_cmd =
  let run file =
    print_string (Soc_core.Printer.to_source (or_die (load file)))
  in
  Cmd.v (Cmd.info "print" ~doc:"Pretty-print the canonical form of a DSL source.")
    Term.(const run $ file_arg)

(* ---------------- tcl ---------------- *)

let backend_conv =
  Arg.enum [ ("2014.2", Soc_core.Tcl.V2014_2); ("2015.3", Soc_core.Tcl.V2015_3) ]

let backend_arg =
  Arg.(value & opt backend_conv Soc_core.Tcl.V2015_3 & info [ "backend" ] ~docv:"VERSION"
         ~doc:"Vivado backend version (2014.2 or 2015.3).")

let tcl_cmd =
  let run file backend output =
    emit output (Soc_core.Tcl.generate ~version:backend (or_die (load file)))
  in
  Cmd.v (Cmd.info "tcl" ~doc:"Generate the Vivado integration Tcl script.")
    Term.(const run $ file_arg $ backend_arg $ output_arg)

(* ---------------- qsys (Altera backend) ---------------- *)

let qsys_cmd =
  let run file output = emit output (Soc_core.Quartus.generate (or_die (load file))) in
  Cmd.v
    (Cmd.info "qsys"
       ~doc:"Generate the Altera Qsys/Quartus integration script (vendor extensibility).")
    Term.(const run $ file_arg $ output_arg)

(* ---------------- devicetree / api ---------------- *)

let devicetree_cmd =
  let run file output =
    let spec = or_die (load file) in
    let sw = Soc_core.Swgen.generate spec ~address_map:(Soc_core.Flow.address_map_of_spec spec) in
    emit output sw.Soc_core.Swgen.device_tree
  in
  Cmd.v (Cmd.info "devicetree" ~doc:"Generate the Linux device-tree source.")
    Term.(const run $ file_arg $ output_arg)

let api_cmd =
  let run file header output =
    let spec = or_die (load file) in
    let sw = Soc_core.Swgen.generate spec ~address_map:(Soc_core.Flow.address_map_of_spec spec) in
    emit output (if header then sw.Soc_core.Swgen.api_header else sw.Soc_core.Swgen.api_source)
  in
  let header_arg =
    Arg.(value & flag & info [ "header" ] ~doc:"Emit the header instead of the C source.")
  in
  Cmd.v (Cmd.info "api" ~doc:"Generate the C driver API (source, or header with --header).")
    Term.(const run $ file_arg $ header_arg $ output_arg)

(* ---------------- diagram ---------------- *)

let diagram_cmd =
  let run file format output =
    let spec = or_die (load file) in
    emit output
      (match format with
      | `Dot -> Soc_core.Block_diagram.dot_of_spec spec
      | `Ascii -> Soc_core.Block_diagram.ascii_of_spec spec)
  in
  let format_arg =
    Arg.(value & opt (enum [ ("dot", `Dot); ("ascii", `Ascii) ]) `Ascii
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: dot or ascii.")
  in
  Cmd.v (Cmd.info "diagram" ~doc:"Render the Fig. 10-style block diagram.")
    Term.(const run $ file_arg $ format_arg $ output_arg)

(* ---------------- metrics ---------------- *)

let metrics_cmd =
  let run file =
    let spec = or_die (load file) in
    let dsl = Soc_util.Metrics.of_string (Soc_core.Printer.to_source spec) in
    let tcl = Soc_util.Metrics.of_string (Soc_core.Tcl.generate ~version:Soc_core.Tcl.V2014_2 spec) in
    Printf.printf "DSL: %s\n" (Format.asprintf "%a" Soc_util.Metrics.pp_volume dsl);
    Printf.printf "Tcl: %s\n" (Format.asprintf "%a" Soc_util.Metrics.pp_volume tcl);
    Printf.printf "ratios: %.1fx lines, %.1fx characters\n"
      (Soc_util.Metrics.ratio ~num:tcl.Soc_util.Metrics.lines ~den:dsl.Soc_util.Metrics.lines)
      (Soc_util.Metrics.ratio ~num:tcl.Soc_util.Metrics.chars ~den:dsl.Soc_util.Metrics.chars)
  in
  Cmd.v (Cmd.info "metrics" ~doc:"Report the Section VI.C conciseness metrics (DSL vs Tcl).")
    Term.(const run $ file_arg)

(* ---------------- build / farm shared crash-safety plumbing ---------------- *)

let kill_at_conv =
  let parse s =
    let bad = `Msg "expected STAGE:INDEX, e.g. hls:2 or synth:0" in
    match String.index_opt s ':' with
    | None -> Error bad
    | Some i -> (
      let stage = String.sub s 0 i
      and idx = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt idx with
      | Some k when k >= 0 && stage <> "" -> Ok (Soc_fault.Fault.Kill_at (stage, k))
      | _ -> Error bad)
  in
  let print ppf (Soc_fault.Fault.Kill_at (s, k)) = Format.fprintf ppf "%s:%d" s k in
  Arg.conv (parse, print)

let kill_arg =
  Arg.(value & opt (some kill_at_conv) None & info [ "kill-at" ] ~docv:"STAGE:K"
       ~doc:"Crash-test the journal: simulate process death the instant the \
             K-th job of STAGE (preflight, hls, integrate, synth, swgen, \
             estimate, finalize) is journaled in-flight. The run exits 137 \
             with the journal sealed; rerun with --resume.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
       ~doc:"Replay the write-ahead journal in --cache-dir: completed jobs \
             are skipped (artifacts re-verified from the cache), in-flight \
             ones re-enqueued.")

let cache_max_mb_arg =
  Arg.(value & opt (some int) None & info [ "cache-max-mb" ] ~docv:"MB"
       ~doc:"Cap the disk cache at $(docv) megabytes; least-recently-used \
             entries are evicted (journal-live entries never are).")

let sim_arg =
  Arg.(value
       & opt
           (enum
              [ ("compiled", Soc_rtl_compile.Engine.Compiled);
                ("interp", Soc_rtl_compile.Engine.Interp) ])
           Soc_rtl_compile.Engine.Compiled
       & info [ "sim" ] ~docv:"BACKEND"
           ~doc:"Netlist co-simulation backend: $(b,compiled) (lowered, \
                 optimized instruction tape; the default) or $(b,interp) \
                 (the reference interpreter, kept as the differential \
                 oracle). Both produce bit-identical results.")

let require_cache_dir ~resume cache_dir =
  if resume && cache_dir = None then begin
    prerr_endline "socdsl: --resume requires --cache-dir (the journal lives there)";
    exit 2
  end

let open_journal ~resume cache_dir =
  Option.map
    (fun dir -> Soc_farm.Journal.open_ ~resume (Filename.concat dir Soc_farm.Journal.default_name))
    cache_dir

let report_replay journal =
  match journal with
  | None -> ()
  | Some j ->
    let st = Soc_farm.Journal.status_of (Soc_farm.Journal.replayed j) in
    if st.Soc_farm.Journal.completed <> [] || st.Soc_farm.Journal.in_flight <> []
       || Soc_farm.Journal.dropped j > 0
    then
      Printf.printf "journal: replaying %d completed, %d in-flight job(s)%s\n"
        (List.length st.Soc_farm.Journal.completed)
        (List.length st.Soc_farm.Journal.in_flight)
        (if Soc_farm.Journal.dropped j > 0 then
           Printf.sprintf " (%d corrupt line(s) dropped)" (Soc_farm.Journal.dropped j)
         else "")

let die_killed stage k =
  Printf.eprintf
    "socdsl: simulated crash at %s:%d; journal sealed, committed artifacts are \
     intact -- rerun with --resume to continue\n"
    stage k;
  exit 137

let print_cache_diags cache =
  List.iter
    (fun d -> print_endline (Soc_util.Diag.to_string d))
    (Soc_farm.Cache.diags cache)

(* ---------------- build ---------------- *)

let build_cmd =
  let run file seed cache_dir max_mb resume kill sim =
    require_cache_dir ~resume cache_dir;
    Soc_rtl_compile.Engine.set_default_backend sim;
    let spec = or_die (load file) in
    Printf.printf "effective seed: %d\n" seed;
    let missing =
      List.filter
        (fun (n : Soc_core.Spec.node_spec) ->
          not (List.mem_assoc n.Soc_core.Spec.node_name (builtin_kernels ())))
        spec.Soc_core.Spec.nodes
    in
    if missing <> [] then begin
      Printf.eprintf
        "socdsl: no built-in kernel for: %s\n(known kernels: %s)\n"
        (String.concat ", "
           (List.map (fun (n : Soc_core.Spec.node_spec) -> n.Soc_core.Spec.node_name) missing))
        (String.concat ", " (List.map fst (builtin_kernels ())));
      exit 1
    end;
    let module Fault = Soc_fault.Fault in
    let module Journal = Soc_farm.Journal in
    let cache =
      match cache_dir with
      | None -> None
      | Some _ -> Some (Soc_farm.Cache.create ?disk_dir:cache_dir ?max_mb ())
    in
    Option.iter Soc_farm.Cache.enable_tape_cache cache;
    let journal = open_journal ~resume cache_dir in
    report_replay journal;
    let jappend e = Option.iter (fun j -> Journal.append j e) journal in
    (* The serial flow journals each stage: Done for the previous stage is
       written when the next one starts (the flow only exposes stage
       entries), so a kill leaves exactly one in-flight entry. Skipping on
       resume happens through the verified disk cache underneath. *)
    let inj = Fault.arm kill in
    let current = ref None in
    let finish () =
      Option.iter
        (fun (cat, label) -> jappend (Journal.Done { stage = cat; label; key = "" }))
        !current;
      current := None
    in
    let on_stage label =
      finish ();
      let cat =
        match String.index_opt label ':' with
        | Some i -> String.sub label 0 i
        | None -> label
      in
      jappend (Journal.Start { stage = cat; label; key = "" });
      current := Some (cat, label);
      try Fault.crash_step inj ~stage:cat
      with Fault.Killed _ as e ->
        Option.iter Journal.seal journal;
        raise e
    in
    match
      Soc_core.Flow.build
        ?hls:(Option.map Soc_farm.Cache.hls_engine cache)
        ~on_stage spec ~kernels:(builtin_kernels ())
    with
    | exception Fault.Killed (s, k) -> die_killed s k
    | exception Soc_core.Flow.Build_error msg ->
      prerr_endline ("socdsl: " ^ msg);
      exit 1
    | b ->
      finish ();
      jappend (Journal.Batch_done { ok = 1; failed = 0 });
      Option.iter Journal.close journal;
      Option.iter
        (fun c ->
          print_endline (Soc_farm.Cache.render_stats c);
          print_cache_diags c)
        cache;
      Printf.printf "%s: flow complete\n" spec.Soc_core.Spec.design_name;
      Printf.printf "bitstream artifact: %s\n" b.Soc_core.Flow.bitstream;
      Printf.printf "resources: %s\n"
        (Format.asprintf "%a" Soc_hls.Report.pp_usage b.Soc_core.Flow.resources);
      Format.printf "%a"
        (Soc_hls.Report.pp_utilization ?device:None)
        b.Soc_core.Flow.resources;
      Printf.printf "fits xc7z020: %b\n" (Soc_hls.Report.fits b.Soc_core.Flow.resources);
      Printf.printf "estimated tool time: %s\n"
        (Format.asprintf "%a" Soc_core.Toolsim.pp b.Soc_core.Flow.tool_times);
      List.iter
        (fun (impl : Soc_core.Flow.node_impl) ->
          Format.printf "%a" Soc_hls.Perf.pp impl.Soc_core.Flow.accel.Soc_hls.Engine.perf)
        b.Soc_core.Flow.impls
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist verified HLS artifacts (and the write-ahead journal) \
               in $(docv); later runs reuse them.")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Run the full flow (HLS + integration + swgen) on a DSL source, resolving \
          node names against the built-in kernel library (case-study kernels). \
          With --cache-dir the run is crash-safe: progress is journaled, artifacts \
          are committed atomically, and --resume continues an interrupted run.")
    Term.(const run $ file_arg $ seed_arg $ cache_dir_arg $ cache_max_mb_arg
          $ resume_arg $ kill_arg $ sim_arg)

(* ---------------- farm ---------------- *)

let farm_cmd =
  let run files jobs cache_dir max_mb resume kill manifest trace_out retries timeout seed sim =
    require_cache_dir ~resume cache_dir;
    Soc_rtl_compile.Engine.set_default_backend sim;
    Printf.printf "effective seed: %d\n" seed;
    let entries =
      List.map
        (fun file ->
          let spec = or_die (load file) in
          let kernels =
            List.filter
              (fun (name, _) ->
                List.exists
                  (fun (n : Soc_core.Spec.node_spec) -> n.Soc_core.Spec.node_name = name)
                  spec.Soc_core.Spec.nodes)
              (builtin_kernels ())
          in
          { Soc_farm.Jobgraph.spec; kernels })
        files
    in
    let cache = Soc_farm.Cache.create ?disk_dir:cache_dir ?max_mb () in
    Soc_farm.Cache.enable_tape_cache cache;
    let journal = open_journal ~resume cache_dir in
    report_replay journal;
    match Soc_farm.Farm.build_batch ?jobs ~cache ?retries ?timeout ?journal ?kill entries with
    | exception Soc_fault.Fault.Killed (s, k) -> die_killed s k
    | report ->
      print_string (Soc_farm.Farm.render_report report);
      print_cache_diags cache;
      Option.iter Soc_farm.Journal.close journal;
      (match manifest with
      | Some path ->
        Soc_util.Atomic_io.write_file path (Soc_farm.Farm.manifest_json report);
        Printf.printf "manifest written to %s\n" path
      | None -> ());
      (match trace_out with
      | Some path ->
        Soc_farm.Trace.save report.Soc_farm.Farm.trace path;
        Printf.printf "trace written to %s (load in chrome://tracing)\n" path
      | None -> ());
      if report.Soc_farm.Farm.failures <> [] then exit 1
  in
  let files_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
         ~doc:"DSL source files; the batch shares one content-addressed HLS cache.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains (default: the recommended domain count). Results are \
               bit-identical for any value.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist the artifact cache to $(docv); later runs reuse HLS results \
               across invocations.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON timeline of the batch to $(docv).")
  in
  let retries_arg =
    Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N"
         ~doc:"Retry budget per job for transient failures (default 2).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Per-job deadline; a job past it is cancelled and reported.")
  in
  let manifest_arg =
    Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE"
         ~doc:"Write a JSON manifest of per-design build digests to $(docv) \
               (atomic); byte-compare a resumed run against a clean one.")
  in
  Cmd.v
    (Cmd.info "farm"
       ~doc:
         "Build a batch of DSL sources on the parallel build farm: per-kernel HLS jobs \
          are deduplicated by content hash and shared across architectures, work runs \
          on worker domains, and failures are reported per job without aborting the \
          batch. With --cache-dir the batch is crash-safe: journaled progress, \
          atomic checksummed artifacts, --resume after any interruption.")
    Term.(const run $ files_arg $ jobs_arg $ cache_dir_arg $ cache_max_mb_arg
          $ resume_arg $ kill_arg $ manifest_arg $ trace_arg $ retries_arg
          $ timeout_arg $ seed_arg $ sim_arg)

(* ---------------- explore ---------------- *)

(* Shared by `socdsl explore` and `socdsl client explore`. *)
let strategy_arg =
  Arg.(value & opt string "evolve" & info [ "strategy" ] ~docv:"NAME"
       ~doc:"Search strategy: $(b,exhaustive), $(b,random), $(b,greedy) or \
             $(b,evolve).")

let samples_arg =
  Arg.(value & opt int 32 & info [ "samples" ] ~docv:"N"
       ~doc:"Candidates drawn by the $(b,random) strategy.")

let population_arg =
  Arg.(value & opt int 8 & info [ "population" ] ~docv:"N"
       ~doc:"Population size per generation of the $(b,evolve) strategy.")

let generations_arg =
  Arg.(value & opt int 4 & info [ "generations" ] ~docv:"N"
       ~doc:"Generations of the $(b,evolve) strategy.")

let budget_arg =
  Arg.(value & opt int 100 & info [ "budget" ] ~docv:"PCT"
       ~doc:"Resource budget as a percentage of the Zynq-7020; candidates \
             whose estimated or synthesized usage exceeds it are infeasible.")

let explore_format_arg =
  Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output: $(b,text) (table + winner DSL) or $(b,json) (the \
                 deterministic frontier JSON on stdout).")

let explore_width_arg =
  Arg.(value & opt int 16 & info [ "width" ] ~docv:"W" ~doc:"Image width.")

let explore_height_arg =
  Arg.(value & opt int 16 & info [ "height" ] ~docv:"H" ~doc:"Image height.")

let print_explore_failures failures =
  List.iter
    (fun (k, msg) -> prerr_endline (Printf.sprintf "socdsl: FAILED %s: %s" k msg))
    failures

let explore_cmd =
  let run strategy samples population generations seed budget width height mode
      cache_dir max_mb jobs format output =
    let strategy =
      or_die
        (Soc_tune.Search.strategy_of_string ~samples ~population ~generations strategy)
    in
    let cache = Soc_farm.Cache.create ?disk_dir:cache_dir ?max_mb () in
    if format = `Text then Printf.printf "effective seed: %d\n%!" seed;
    let on_round (p : Soc_tune.Search.progress) =
      if format = `Text then
        Printf.printf "round %d: %d evaluated, %d infeasible, frontier %d\n%!"
          p.Soc_tune.Search.round p.Soc_tune.Search.evaluated
          p.Soc_tune.Search.infeasible
          (List.length p.Soc_tune.Search.frontier)
    in
    let opts =
      { Soc_dse.Tuner.default_options with
        Soc_dse.Tuner.strategy; seed; width; height; budget_pct = budget; mode;
        jobs = Option.value jobs ~default:1 }
    in
    let o = Soc_dse.Tuner.run ~cache ~on_round opts in
    let r = o.Soc_dse.Tuner.search in
    let frontier_json = Soc_tune.Render.frontier_json r in
    (match output with
    | Some path ->
      Soc_util.Atomic_io.write_file path frontier_json;
      if format = `Text then Printf.printf "frontier written to %s\n" path
    | None -> ());
    let c = o.Soc_dse.Tuner.cache in
    let stats_line =
      Printf.sprintf
        "farm: %d batch(es), %d HLS request(s), %d engine run(s), %d cache hit(s) (%d disk), %d pruned pre-HLS"
        o.Soc_dse.Tuner.batches o.Soc_dse.Tuner.hls_requests
        o.Soc_dse.Tuner.engine_invocations
        (c.Soc_farm.Cache.hits + c.Soc_farm.Cache.disk_hits)
        c.Soc_farm.Cache.disk_hits o.Soc_dse.Tuner.pruned
    in
    (match format with
    | `Json ->
      print_string frontier_json;
      prerr_endline stats_line
    | `Text ->
      Soc_util.Table.print (Soc_tune.Render.table r);
      print_endline (Soc_tune.Render.summary r);
      print_endline stats_line;
      (match Soc_tune.Render.winner r with
      | None -> print_endline "no feasible point"
      | Some w ->
        Printf.printf "winner: %s  %.1f us  %d LUT %d FF %d BRAM18 %d DSP\n"
          w.Soc_tune.Search.key w.Soc_tune.Search.objectives.(0)
          w.Soc_tune.Search.usage.Soc_hls.Report.lut
          w.Soc_tune.Search.usage.Soc_hls.Report.ff
          w.Soc_tune.Search.usage.Soc_hls.Report.bram18
          w.Soc_tune.Search.usage.Soc_hls.Report.dsp;
        if w.Soc_tune.Search.dsl <> "" then begin
          print_endline "winning spec (DSL):";
          print_string w.Soc_tune.Search.dsl
        end));
    print_explore_failures r.Soc_tune.Search.failures;
    if r.Soc_tune.Search.failures <> [] then exit 1
  in
  let mode_arg =
    Arg.(value
         & opt (enum [ ("rtl", `Rtl); ("behavioral", `Behavioral) ]) `Rtl
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Accelerator execution during measurement: $(b,rtl) (generated \
                   netlists on the co-simulator) or $(b,behavioral) (interpreter \
                   with ideal-pipeline timing; much faster sweeps).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Farm worker domains per batch; results are bit-identical for any value.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist the HLS cache to $(docv); a warm re-run of the same sweep \
               repeats zero synthesis work and its frontier JSON is byte-identical.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Autotune the Otsu pipeline over HW/SW partition, FIFO depth, schedule \
          strategy and functional-unit allocation: populations are priced through \
          the build farm (content-hash dedup, shared cache), infeasible candidates \
          are pruned by the analyzer before any synthesis, every measured point is \
          checked bit-exactly against the golden model, and the result is the \
          Pareto frontier over (latency, LUT, FF, BRAM, DSP).")
    Term.(const run $ strategy_arg $ samples_arg $ population_arg $ generations_arg
          $ seed_arg $ budget_arg $ explore_width_arg $ explore_height_arg
          $ mode_arg $ cache_dir_arg $ cache_max_mb_arg $ jobs_arg
          $ explore_format_arg $ output_arg)

(* ---------------- doctor ---------------- *)

let doctor_cmd =
  let module Diag = Soc_util.Diag in
  let json_str s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  in
  let run dir format =
    let cr = Soc_farm.Cache.fsck ~dir in
    let jr = Soc_farm.Journal.fsck (Filename.concat dir Soc_farm.Journal.default_name) in
    let diags = cr.Soc_farm.Cache.fsck_diags @ jr.Soc_farm.Journal.jfsck_diags in
    (match format with
    | `Text ->
      Printf.printf
        "cache: %d artifact(s) checked, %d ok, %d quarantined, %d stale removed, %d orphan temp(s) removed\n"
        cr.Soc_farm.Cache.fsck_checked cr.Soc_farm.Cache.fsck_ok
        (List.length cr.Soc_farm.Cache.fsck_quarantined)
        (List.length cr.Soc_farm.Cache.fsck_stale)
        (List.length cr.Soc_farm.Cache.fsck_orphans);
      Printf.printf "journal: %d entr%s kept, %d corrupt line(s) dropped, %d compacted away\n"
        jr.Soc_farm.Journal.jfsck_entries
        (if jr.Soc_farm.Journal.jfsck_entries = 1 then "y" else "ies")
        jr.Soc_farm.Journal.jfsck_dropped jr.Soc_farm.Journal.jfsck_compacted;
      List.iter (fun d -> print_endline (Diag.to_string ~file:dir d)) diags;
      print_endline
        (if diags = [] then "doctor: cache is healthy"
         else "doctor: repairs applied; cache is now healthy")
    | `Json ->
      let names l = "[" ^ String.concat "," (List.map json_str l) ^ "]" in
      Printf.printf
        "{\n  \"cache\": {\"checked\": %d, \"ok\": %d, \"quarantined\": %s, \"stale\": %s, \"orphans\": %s},\n  \"journal\": {\"entries\": %d, \"dropped\": %d, \"compacted\": %d},\n  \"diags\": [%s]\n}\n"
        cr.Soc_farm.Cache.fsck_checked cr.Soc_farm.Cache.fsck_ok
        (names cr.Soc_farm.Cache.fsck_quarantined)
        (names cr.Soc_farm.Cache.fsck_stale)
        (names cr.Soc_farm.Cache.fsck_orphans)
        jr.Soc_farm.Journal.jfsck_entries jr.Soc_farm.Journal.jfsck_dropped
        jr.Soc_farm.Journal.jfsck_compacted
        (String.concat ", " (List.map (Diag.to_json ~file:dir) diags)))
  in
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CACHE-DIR"
         ~doc:"Cache directory to check (as passed to --cache-dir).")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Check and repair a build cache: verify every artifact's integrity digest \
          (corrupt entries are quarantined, never deserialized), drop stale-format \
          entries and orphaned temp files from interrupted commits, and verify + \
          compact the write-ahead journal. Never fails on corrupt input; exits 0 \
          once the cache is healthy.")
    Term.(const run $ dir_arg $ format_arg)

(* ---------------- serve / client ---------------- *)

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
       ~doc:"Address to bind (serve) or connect to (client).")

let port_arg ~default =
  Arg.(value & opt int default & info [ "port" ] ~docv:"PORT"
       ~doc:"TCP port. For serve, 0 picks an ephemeral port (printed at startup).")

let parse_fleet s =
  List.map
    (fun tok ->
      let bad () =
        prerr_endline
          (Printf.sprintf
             "socdsl: --fleet endpoint %S is not host:port (expected e.g. \
              127.0.0.1:7271,127.0.0.1:7272)"
             tok);
        exit 2
      in
      match String.rindex_opt tok ':' with
      | None -> bad ()
      | Some i -> (
        let h = String.sub tok 0 i in
        let p = String.sub tok (i + 1) (String.length tok - i - 1) in
        match int_of_string_opt p with
        | Some p when h <> "" && p > 0 -> (h, p)
        | _ -> bad ()))
    (String.split_on_char ',' s)

let serve_cmd =
  let run host port workers queue_cap deadline_ms cache_dir max_mb kill sim
      breaker_threshold breaker_cooldown_ms build_timeout_ms max_worker_restarts
      idle_timeout_ms max_sessions worker worker_id fleet =
    require_cache_dir ~resume:false cache_dir;
    Soc_rtl_compile.Engine.set_default_backend sim;
    if worker then begin
      (* Worker mode: the dumb end of a fleet. No queue, no journal, no
         drain protocol — it serves builds until killed, which is the
         failure model the coordinator is built around. *)
      let wcfg =
        { Soc_serve.Remote.default_config with
          host; port; cache_dir; cache_max_mb = max_mb;
          kernels = builtin_kernels (); worker_id }
      in
      let w =
        try Soc_serve.Remote.start wcfg
        with Unix.Unix_error (err, _, _) ->
          prerr_endline
            (Printf.sprintf "socdsl: cannot bind %s:%d: %s" host port
               (Unix.error_message err));
          exit 2
      in
      Printf.printf "socdsl serve --worker: %s listening on %s:%d%s\n%!"
        worker_id host (Soc_serve.Remote.port w)
        (match cache_dir with
        | Some d -> ", cache " ^ d
        | None -> ", in-memory cache");
      let rec forever () =
        Thread.delay 3600.0;
        forever ()
      in
      forever ()
    end;
    let fleet_endpoints = match fleet with None -> [] | Some s -> parse_fleet s in
    let cfg =
      { Soc_serve.Server.default_config with
        host; port; workers; queue_cap; default_deadline_ms = deadline_ms;
        cache_dir; cache_max_mb = max_mb; kill;
        kernels = builtin_kernels ();
        breaker_threshold; breaker_cooldown_ms;
        build_timeout_ms; max_worker_restarts;
        idle_session_timeout_ms = idle_timeout_ms; max_sessions;
        fleet = fleet_endpoints }
    in
    let srv =
      try Soc_serve.Server.start cfg
      with Unix.Unix_error (err, _, _) ->
        prerr_endline
          (Printf.sprintf "socdsl: cannot bind %s:%d: %s" host port
             (Unix.error_message err));
        exit 2
    in
    List.iter
      (fun d -> print_endline (Soc_util.Diag.to_string d))
      (Soc_serve.Server.startup_diags srv);
    Printf.printf "socdsl serve: listening on %s:%d (%d worker(s), queue cap %d%s%s)\n%!"
      host (Soc_serve.Server.port srv) workers queue_cap
      (match cache_dir with Some d -> ", cache " ^ d | None -> ", in-memory cache")
      (match fleet_endpoints with
      | [] -> ""
      | eps -> Printf.sprintf ", coordinating %d remote worker(s)" (List.length eps));
    match Soc_serve.Server.wait srv with
    | `Drained (ok, failed) ->
      Soc_serve.Server.stop srv;
      Printf.printf "drained: %d request(s) completed, %d failed\n" ok failed;
      if failed > 0 then exit 1
    | `Killed (s, k) -> die_killed s k
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Concurrent builds in flight (worker threads; each build runs \
               single-domain so results stay deterministic).")
  in
  let queue_cap_arg =
    Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N"
         ~doc:"Admission bound: submissions beyond $(docv) queued jobs are \
               rejected with a structured backpressure reply, never parked.")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Default per-request deadline; a request still queued past it is \
               expired without running (a submit's own deadline wins).")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist the shared HLS cache and write-ahead journal in $(docv); \
               the daemon fscks both at startup and resumes committed work, so \
               a killed server restarted on the same $(docv) loses nothing.")
  in
  let breaker_threshold_arg =
    Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~docv:"K"
         ~doc:"Open a spec's circuit breaker after $(docv) consecutive build \
               failures of the same coalescing key; while open, submits of that \
               spec are rejected as poisoned without running. 0 disables.")
  in
  let breaker_cooldown_arg =
    Arg.(value & opt int 30000 & info [ "breaker-cooldown-ms" ] ~docv:"MS"
         ~doc:"How long an open breaker rejects before letting one probe \
               build through (success closes it, failure re-opens).")
  in
  let build_timeout_arg =
    Arg.(value & opt (some int) None & info [ "build-timeout-ms" ] ~docv:"MS"
         ~doc:"Wall cap per running build, enforced by the watchdog even when \
               the request named no deadline: a build past it is expired, its \
               waiters unblock, and the wedged worker is replaced.")
  in
  let max_restarts_arg =
    Arg.(value & opt int 8 & info [ "max-worker-restarts" ] ~docv:"N"
         ~doc:"Worker replacements allowed inside a 60 s window before the pool \
               is declared degraded instead of restart-thrashing.")
  in
  let idle_timeout_arg =
    Arg.(value & opt (some int) None & info [ "idle-timeout-ms" ] ~docv:"MS"
         ~doc:"Drop client sessions idle longer than $(docv), so slow or dead \
               clients cannot pin connection slots forever.")
  in
  let max_sessions_arg =
    Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N"
         ~doc:"Concurrent client connection cap; connections beyond it are \
               answered with an error and closed.")
  in
  let worker_arg =
    Arg.(value & flag & info [ "worker" ]
         ~doc:"Run a fleet worker daemon instead of the full server: no queue, \
               no journal, no drain — it answers hello/heartbeat/build/cancel \
               frames from a coordinator ('socdsl serve --fleet ...') against a \
               (usually shared) --cache-dir, and is safe to kill -9 at any \
               time: the coordinator re-dispatches its in-flight work.")
  in
  let worker_id_arg =
    Arg.(value & opt string "worker" & info [ "worker-id" ] ~docv:"ID"
         ~doc:"The worker's name in hello replies and its 'wk:ID' net-fault \
               link label (chaos campaigns partition workers by this label).")
  in
  let fleet_arg =
    Arg.(value & opt (some string) None & info [ "fleet" ] ~docv:"H:P,H:P,..."
         ~doc:"Comma-separated 'socdsl serve --worker' endpoints. Non-empty \
               turns this daemon into a coordinator: accepted builds are \
               dispatched to the fleet with retries, hedging and heartbeat \
               failover, and run locally only when the whole fleet is \
               exhausted.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the generation daemon: accept DSL sources over TCP (length-prefixed \
          JSON frames), gate each through the static analyzer, and build them on \
          the farm with a shared content-addressed cache. Identical in-flight \
          requests coalesce into one build; the queue is bounded (backpressure); \
          'socdsl client drain' stops admission and exits cleanly. With --kill-at \
          the armed crash point fires inside one build (exit 137) and a restart \
          on the same --cache-dir recovers. With --fleet, builds are dispatched \
          to remote --worker daemons with retries, hedging and partition-safe \
          failover.")
    Term.(const run $ host_arg $ port_arg ~default:0 $ workers_arg $ queue_cap_arg
          $ deadline_arg $ cache_dir_arg $ cache_max_mb_arg $ kill_arg $ sim_arg
          $ breaker_threshold_arg $ breaker_cooldown_arg $ build_timeout_arg
          $ max_restarts_arg $ idle_timeout_arg $ max_sessions_arg
          $ worker_arg $ worker_id_arg $ fleet_arg)

let client_cmd =
  let with_client host port f =
    match Soc_serve.Client.connect ~host ~port () with
    | exception Soc_serve.Client.Error msg ->
      prerr_endline ("socdsl: " ^ msg);
      exit 2
    | c ->
      Fun.protect ~finally:(fun () -> Soc_serve.Client.close c) (fun () ->
          try f c
          with Soc_serve.Client.Error msg ->
            prerr_endline ("socdsl: " ^ msg);
            exit 2)
  in
  let print_diags diags =
    List.iter (fun d -> print_endline (Soc_util.Diag.to_string d)) diags
  in
  let submit =
    let run file host port priority deadline_ms manifest quiet =
      let source = read_source file in
      with_client host port (fun c ->
          match Soc_serve.Client.submit c ~priority ?deadline_ms source with
          | Soc_serve.Protocol.Rejected { reason; detail; diags } ->
            print_diags diags;
            prerr_endline
              (Printf.sprintf "socdsl: rejected (%s): %s"
                 (Soc_serve.Protocol.reject_reason_label reason) detail);
            exit 1
          | Soc_serve.Protocol.Error_r msg ->
            prerr_endline ("socdsl: server error: " ^ msg);
            exit 2
          | Soc_serve.Protocol.Accepted { id; key; coalesced; diags } ->
            print_diags diags;
            if not quiet then
              Printf.printf "accepted: id %d, key %s%s\n%!" id key
                (if coalesced then " (coalesced with an in-flight build)" else "");
            (* Stream queue progress until the job leaves the queue, then
               block on the result. *)
            let rec watch last =
              match Soc_serve.Client.status c id with
              | Soc_serve.Protocol.Status_r { state = Soc_serve.Protocol.Queued n; _ } ->
                if not quiet && last <> Some n then
                  Printf.printf "queued: %d job(s) ahead\n%!" n;
                Unix.sleepf 0.05;
                watch (Some n)
              | _ -> ()
            in
            watch None;
            (match Soc_serve.Client.result c id with
            | Soc_serve.Protocol.Result_r
                { state = Soc_serve.Protocol.Done; design; digest; manifest = m; wall_ms; _ }
              ->
              Printf.printf "done: %s digest %s (%.1f ms)\n" design digest wall_ms;
              (match manifest with
              | Some path ->
                Soc_util.Atomic_io.write_file path m;
                Printf.printf "manifest written to %s\n" path
              | None -> ())
            | Soc_serve.Protocol.Result_r { state = Soc_serve.Protocol.Expired; _ } ->
              prerr_endline "socdsl: request expired before it could run";
              exit 1
            | Soc_serve.Protocol.Result_r { state = Soc_serve.Protocol.Failed msg; _ } ->
              prerr_endline ("socdsl: build failed: " ^ msg);
              exit 1
            | r ->
              prerr_endline
                ("socdsl: unexpected reply: "
                ^ Soc_serve.Protocol.(to_string (encode_response r)));
              exit 2)
          | r ->
            prerr_endline
              ("socdsl: unexpected reply: "
              ^ Soc_serve.Protocol.(to_string (encode_response r)));
            exit 2)
    in
    let priority_arg =
      Arg.(value & opt int 0 & info [ "priority" ] ~docv:"P"
           ~doc:"Dispatch priority; higher runs first (FIFO within a level).")
    in
    let deadline_arg =
      Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Expire the request if still queued after $(docv) milliseconds.")
    in
    let manifest_arg =
      Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Write the build's JSON manifest to $(docv) (atomic) — the same \
                 format as 'socdsl farm --manifest'.")
    in
    let quiet_arg =
      Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the final result line.")
    in
    Cmd.v
      (Cmd.info "submit"
         ~doc:
           "Submit a DSL source to a running daemon, stream its queue progress \
            and block until the build finishes; analyzer warnings and rejections \
            arrive as structured diagnostics.")
      Term.(const run $ file_arg $ host_arg $ port_arg ~default:7171 $ priority_arg
            $ deadline_arg $ manifest_arg $ quiet_arg)
  in
  let stats =
    let run host port format =
      with_client host port (fun c ->
          let s = Soc_serve.Client.stats c in
          match format with
          | `Json ->
            print_endline
              Soc_serve.Protocol.(to_string (encode_response (Stats_r s)))
          | `Text ->
            let open Soc_serve.Protocol in
            Printf.printf "uptime: %.0f ms, %d/%d worker(s) live%s%s\n" s.uptime_ms
              s.live_workers s.workers
              (if s.degraded then ", DEGRADED" else "")
              (if s.draining then ", draining" else "");
            Printf.printf
              "requests: %d submitted (%d coalesced), %d completed, %d failed, %d expired\n"
              s.submitted s.coalesced s.completed s.failed s.expired;
            Printf.printf "rejected: %d backpressure, %d check/parse, %d poisoned\n"
              s.rejected_queue s.rejected_check s.rejected_poisoned;
            Printf.printf
              "supervision: %d worker restart(s), %d watchdog fire(s), %d breaker key(s) open, %d sim fallback(s)\n"
              s.worker_restarts s.watchdog_fires s.breaker_open_keys s.sim_fallbacks;
            Printf.printf "verifier: %d tape reject(s), %d cache re-verification(s)\n"
              s.rtl_verify_rejects s.tape_reverifies;
            Printf.printf "queue: %d deep, %d running\n" s.queue_depth s.running;
            Printf.printf
              "cache: %d hits, %d disk hits, %d misses (hit rate %.2f), %d engine run(s)\n"
              s.cache_hits s.cache_disk_hits s.cache_misses s.hit_rate s.engine_runs;
            Printf.printf "latency: n=%d p50=%.1f ms p95=%.1f ms p99=%.1f ms\n"
              s.lat_count s.lat_p50_ms s.lat_p95_ms s.lat_p99_ms)
    in
    let format_arg =
      Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
           & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Print a running daemon's counters: admissions, coalescing, \
            backpressure, cache hit rate, engine runs and latency quantiles.")
      Term.(const run $ host_arg $ port_arg ~default:7171 $ format_arg)
  in
  let drain =
    let run host port =
      with_client host port (fun c ->
          let completed, failed = Soc_serve.Client.drain c in
          Printf.printf "drained: %d request(s) completed, %d failed\n" completed failed)
    in
    Cmd.v
      (Cmd.info "drain"
         ~doc:
           "Stop admission on a running daemon, wait for in-flight builds to \
            finish, and make the daemon exit cleanly.")
      Term.(const run $ host_arg $ port_arg ~default:7171)
  in
  let explore =
    let run host port strategy samples population generations seed budget width
        height output =
      with_client host port (fun c ->
          let req =
            Soc_serve.Protocol.Explore
              { strategy; seed; budget_pct = budget; population; generations;
                samples; width; height }
          in
          let on_update = function
            | Soc_serve.Protocol.Explore_update
                { round; evaluated; infeasible; frontier_size; best_us } ->
              Printf.printf "round %d: %d evaluated, %d infeasible, frontier %d, best %.1f us\n%!"
                round evaluated infeasible frontier_size best_us
            | _ -> ()
          in
          match Soc_serve.Client.explore c ~on_update req with
          | Soc_serve.Protocol.Explore_r
              { frontier; evaluated; infeasible; rounds; engine_runs; cache_hits; wall_ms }
            ->
            Printf.printf
              "done: %d evaluated, %d infeasible, %d round(s), %d engine run(s), %d cache hit(s), %.1f ms\n"
              evaluated infeasible rounds engine_runs cache_hits wall_ms;
            (match output with
            | Some path ->
              Soc_util.Atomic_io.write_file path frontier;
              Printf.printf "frontier written to %s\n" path
            | None -> print_string frontier)
          | Soc_serve.Protocol.Rejected { reason; detail; diags } ->
            print_diags diags;
            prerr_endline
              (Printf.sprintf "socdsl: rejected (%s): %s"
                 (Soc_serve.Protocol.reject_reason_label reason) detail);
            exit 1
          | Soc_serve.Protocol.Error_r msg ->
            prerr_endline ("socdsl: server error: " ^ msg);
            exit 2
          | r ->
            prerr_endline
              ("socdsl: unexpected reply: "
              ^ Soc_serve.Protocol.(to_string (encode_response r)));
            exit 2)
    in
    Cmd.v
      (Cmd.info "explore"
         ~doc:
           "Run an autotuning sweep on a running daemon (sharing its HLS cache \
            with served builds) and stream incremental Pareto-frontier updates; \
            the final deterministic frontier JSON goes to stdout or --output.")
      Term.(const run $ host_arg $ port_arg ~default:7171 $ strategy_arg
            $ samples_arg $ population_arg $ generations_arg $ seed_arg
            $ budget_arg $ explore_width_arg $ explore_height_arg $ output_arg)
  in
  Cmd.group
    (Cmd.info "client"
       ~doc:"Talk to a running 'socdsl serve' daemon (submit, explore, stats, drain).")
    [ submit; explore; stats; drain ]

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let serve_campaign workers cache_dir manifest_out =
    (* Serve-mode chaos: an in-process daemon under injected engine
       crashes, hangs, poison specs, wire abuse and slow clients. Good
       specs are the four Otsu architectures; the poison pill is the
       XTEA loopback (its encrypt kernel armed to raise) and the hung
       build is the FIR pipeline (its smoothing kernel armed to hang). *)
    let cfg =
      { Soc_serve.Chaos.workers;
        kernels = builtin_kernels ();
        good_sources =
          List.map
            (fun a -> Soc_core.Printer.to_source (Soc_apps.Graphs.arch_spec a))
            Soc_apps.Graphs.all_archs;
        poison_source = Soc_core.Printer.to_source Soc_apps.Xtea.loopback_spec;
        poison_kernel = "xteaEnc";
        hang_source = Soc_core.Printer.to_source Soc_apps.Fir.pipeline_spec;
        hang_kernel = "smooth";
        cache_dir }
    in
    let r = Soc_serve.Chaos.run cfg in
    print_string (Soc_serve.Chaos.render r);
    (match manifest_out with
    | Some path when r.Soc_serve.Chaos.manifest <> "" ->
      Soc_util.Atomic_io.write_file path r.Soc_serve.Chaos.manifest;
      Printf.printf "manifest written to %s\n" path
    | _ -> ());
    if not r.Soc_serve.Chaos.healthy then exit 1
  in
  let fleet_campaign seed fleet_size cache_dir manifest_out =
    (* Fleet chaos: an in-process coordinator + worker fleet under seeded
       kills, one-way partitions, 20% frame drops and total fleet loss.
       Good specs are the four Otsu architectures; the shared cache
       proves manifests stay byte-identical with zero repeated HLS. *)
    let dir =
      match cache_dir with
      | Some d -> d
      | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "socdsl-fleet-chaos-%d" (Unix.getpid ()))
    in
    let cfg =
      { Soc_serve.Chaos.fleet_size;
        fkernels = builtin_kernels ();
        fgood_sources =
          List.map
            (fun a -> Soc_core.Printer.to_source (Soc_apps.Graphs.arch_spec a))
            Soc_apps.Graphs.all_archs;
        fcache_dir = dir;
        fseed = seed }
    in
    let r = Soc_serve.Chaos.run_fleet cfg in
    print_string (Soc_serve.Chaos.render ~title:"fleet-chaos campaign" r);
    (match manifest_out with
    | Some path when r.Soc_serve.Chaos.manifest <> "" ->
      Soc_util.Atomic_io.write_file path r.Soc_serve.Chaos.manifest;
      Printf.printf "manifest written to %s\n" path
    | _ -> ());
    if not r.Soc_serve.Chaos.healthy then exit 1
  in
  let run seed faults width height no_fallback permanent bit_flips arch sim serve
      fleet fleet_size serve_workers cache_dir manifest_out =
    Soc_rtl_compile.Engine.set_default_backend sim;
    if fleet then fleet_campaign seed fleet_size cache_dir manifest_out
    else if serve then serve_campaign serve_workers cache_dir manifest_out
    else
    let archs =
      match arch with
      | None -> Soc_apps.Graphs.all_archs
      | Some a -> [ a ]
    in
    Printf.printf "chaos campaign: effective seed %d, %d faults/arch, %dx%d image%s\n\n"
      seed faults width height
      (if no_fallback then ", fallback disabled" else "");
    let outcomes =
      List.map
        (fun a ->
          match
            Soc_apps.Chaos_runner.run ~width ~height ~seed ~n_faults:faults
              ~fallback:(not no_fallback) ~include_permanent:permanent
              ~include_bit_flips:bit_flips a
          with
          | o ->
            print_string (Soc_apps.Chaos_runner.render_outcome o);
            print_newline ();
            (a, Some o)
          | exception (Soc_platform.Executive.Unrecoverable _ as e) ->
            (* The registered printer renders the structured failure
               report: faulty unit, injected faults, attempt history. *)
            Printf.printf "=== %s: %s ===\n\n" (Soc_apps.Graphs.arch_name a)
              (Printexc.to_string e);
            (a, None))
        archs
    in
    (* Recovery-counter summary over the whole campaign. *)
    let keys =
      [ "injected"; "detected"; "resets"; "retried"; "recovered"; "fell_back";
        "unrecovered" ]
    in
    Printf.printf "%-8s %s %s\n" "arch"
      (String.concat " " (List.map (Printf.sprintf "%11s") keys))
      "output";
    List.iter
      (fun (a, o) ->
        match o with
        | Some (o : Soc_apps.Chaos_runner.outcome) ->
          let ctrs = Soc_fault.Fault.counters o.Soc_apps.Chaos_runner.plan in
          Printf.printf "%-8s %s %s\n"
            (Soc_apps.Graphs.arch_name a)
            (String.concat " "
               (List.map
                  (fun k -> Printf.sprintf "%11d" (Soc_util.Metrics.Counters.get ctrs k))
                  keys))
            (if o.Soc_apps.Chaos_runner.output_ok then "golden" else "MISMATCH")
        | None ->
          Printf.printf "%-8s %s %s\n" (Soc_apps.Graphs.arch_name a)
            (String.concat " " (List.map (fun _ -> Printf.sprintf "%11s" "-") keys))
            "UNRECOVERED")
      outcomes;
    let healthy =
      List.for_all
        (function
          | _, Some (o : Soc_apps.Chaos_runner.outcome) -> o.Soc_apps.Chaos_runner.output_ok
          | _, None -> false)
        outcomes
    in
    Printf.printf "\ncampaign %s (reproduce with --seed %d)\n"
      (if healthy then "healthy: all outputs golden" else "UNHEALTHY")
      seed;
    if not healthy then exit 1
  in
  let faults_arg =
    Arg.(value & opt int 4 & info [ "faults" ] ~docv:"N"
         ~doc:"Faults injected per architecture.")
  in
  let width_arg =
    Arg.(value & opt int 32 & info [ "width" ] ~docv:"W" ~doc:"Image width.")
  in
  let height_arg =
    Arg.(value & opt int 32 & info [ "height" ] ~docv:"H" ~doc:"Image height.")
  in
  let no_fallback_arg =
    Arg.(value & flag & info [ "no-fallback" ]
         ~doc:"Disable the software fallback; unrecovered campaigns report and fail.")
  in
  let permanent_arg =
    Arg.(value & flag & info [ "permanent" ]
         ~doc:"Allow permanently dead accelerators in the campaign.")
  in
  let bit_flips_arg =
    Arg.(value & flag & info [ "bit-flips" ]
         ~doc:"Allow single-bit DRAM flips in the output buffer.")
  in
  let arch_arg =
    Arg.(value & opt (some (enum
           [ ("1", Soc_apps.Graphs.Arch1); ("2", Soc_apps.Graphs.Arch2);
             ("3", Soc_apps.Graphs.Arch3); ("4", Soc_apps.Graphs.Arch4) ])) None
         & info [ "arch" ] ~docv:"N" ~doc:"Run a single architecture (1-4; default all).")
  in
  let serve_arg =
    Arg.(value & flag & info [ "serve" ]
         ~doc:"Run the serve-mode campaign instead: a live in-process daemon \
               under injected engine crashes and hangs, worker deaths, a poison \
               spec, wire-level abuse and slow clients. Exits 1 unless the \
               daemon self-heals through all of it.")
  in
  let fleet_arg =
    Arg.(value & flag & info [ "fleet" ]
         ~doc:"Run the distributed campaign instead: an in-process coordinator \
               dispatching to a fleet of worker daemons under seeded worker \
               kills, one-way network partitions, 20% frame drops and total \
               fleet loss. Exits 1 unless every accepted request completes \
               with manifests byte-identical to a clean farm run and zero \
               repeated HLS.")
  in
  let fleet_size_arg =
    Arg.(value & opt int 3 & info [ "fleet-size" ] ~docv:"N"
         ~doc:"Worker daemons in the fleet campaign (at least 2).")
  in
  let serve_workers_arg =
    Arg.(value & opt int 2 & info [ "serve-workers" ] ~docv:"N"
         ~doc:"Worker pool size of the serve-mode campaign daemon.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persistent cache directory for the serve-mode campaign's \
               restart phase (fresh directories recommended).")
  in
  let manifest_out_arg =
    Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE"
         ~doc:"Write the serve-mode campaign's post-restart manifest to \
               $(docv) — comparable with 'socdsl farm --manifest'.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos-test the co-simulated platform: run the Otsu case study under a \
          seeded fault-injection campaign (accelerator hangs, spurious dones, DMA \
          stalls and errors, stuck FIFOs, bus SLVERRs) with the fault-tolerant \
          runtime (watchdog, soft reset + retry, software fallback), and verify \
          the output stays bit-identical to the golden model. With --serve, \
          chaos-test the generation daemon itself instead: injected HLS/simulator \
          faults, worker deaths, poison specs, wedged builds and hostile clients \
          must all be contained by its supervision layer. With --fleet, \
          chaos-test the distributed serve path: a coordinator and its worker \
          fleet under seeded kills, partitions and frame drops.")
    Term.(const run $ seed_arg $ faults_arg $ width_arg $ height_arg $ no_fallback_arg
          $ permanent_arg $ bit_flips_arg $ arch_arg $ sim_arg $ serve_arg
          $ fleet_arg $ fleet_size_arg $ serve_workers_arg $ cache_dir_arg
          $ manifest_out_arg)

(* ---------------- demo ---------------- *)

let demo_cmd =
  let run design =
    match design with
    | `Listing4 -> print_endline Soc_apps.Graphs.listing4_source
    | `Arch a -> print_string (Soc_core.Printer.to_source (Soc_apps.Graphs.arch_spec a))
    | `Fig4 -> print_string (Soc_core.Printer.to_source Soc_apps.Graphs.fig4_spec)
  in
  let design_arg =
    Arg.(value
         & opt
             (enum
                [ ("listing4", `Listing4);
                  ("1", `Arch Soc_apps.Graphs.Arch1);
                  ("2", `Arch Soc_apps.Graphs.Arch2);
                  ("3", `Arch Soc_apps.Graphs.Arch3);
                  ("4", `Arch Soc_apps.Graphs.Arch4);
                  ("fig4", `Fig4) ])
             `Listing4
         & info [ "arch" ] ~docv:"N"
             ~doc:
               "Design to print: an Otsu architecture (1-4), the paper's \
                Fig. 4 pipeline (fig4), or the verbatim Listing 4 source \
                (listing4, default).")
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:
         "Print a built-in design as canonical DSL source (the paper's \
          Listing 4 by default; --arch selects other case studies).")
    Term.(const run $ design_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "socdsl" ~version:"1.0"
      ~doc:"Scala-style task-graph DSL tool for accelerator-based SoCs (OCaml reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ check_cmd; print_cmd; tcl_cmd; qsys_cmd; devicetree_cmd; api_cmd; diagram_cmd;
            metrics_cmd; build_cmd; farm_cmd; explore_cmd; serve_cmd; client_cmd;
            doctor_cmd; chaos_cmd; demo_cmd ]))

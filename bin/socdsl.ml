(* socdsl: command-line front end of the task-graph DSL tool.

   Mirrors the designer-facing surface of the paper's tool without needing
   kernels: parse and validate DSL sources, pretty-print them, generate the
   Vivado Tcl for either backend version, the device tree, the C API, the
   block diagram, and the conciseness metrics of Section VI.C.

     socdsl check design.tg
     socdsl print design.tg
     socdsl tcl design.tg --backend 2015.3
     socdsl devicetree design.tg
     socdsl api design.tg
     socdsl diagram design.tg --format dot
     socdsl metrics design.tg
     socdsl demo              # emits the paper's Listing 4

   Use "-" as the file to read from stdin. *)

open Cmdliner

let read_source path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let load path =
  match read_source path with
  | exception Sys_error msg -> Error msg
  | source -> (
    match Soc_core.Parser.parse_result source with
    | Ok spec -> Ok spec
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("socdsl: " ^ msg);
    exit 1

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"DSL source file (- for stdin).")

(* Global deterministic seed, shared by every subcommand that involves any
   randomness (chaos campaigns) or emits a report (build, farm): the
   effective seed is always printed, so any run can be reproduced. *)
let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
       ~doc:"Deterministic seed; every report prints the effective value.")

(* ---------------- check ---------------- *)

(* The built-in kernel library: node names from the case studies resolve to
   their kernels so a .tg file can be pushed through the whole flow from
   the command line. *)
let builtin_kernels () =
  let w = 32 and h = 32 in
  Soc_apps.Otsu.kernels ~width:w ~height:h
  @ Soc_apps.Graphs.fig4_kernels ~width:w ~height:h
  @ Soc_apps.Xtea.loopback_kernels ~blocks:(w * h / 2)
  @ Soc_apps.Fir.pipeline_kernels ~samples:(w * h)

let check_cmd =
  let module Diag = Soc_util.Diag in
  (* Diagnostics of one file: SOC000 when the source does not even parse,
     the full analyzer stream otherwise. *)
  let diags_of_file ~graph_only file =
    match read_source file with
    | exception Sys_error msg ->
      prerr_endline ("socdsl: " ^ msg);
      exit 2
    | source -> (
      let parse_diag ~line ~col msg =
        [ Diag.error
            ~span:{ Diag.line; col }
            ~code:"SOC000" ~subject:file msg ]
      in
      match Soc_core.Parser.parse ~validate:false source with
      | exception Soc_core.Parser.Parse_error (msg, line, col) ->
        parse_diag ~line ~col msg
      | exception Soc_core.Lexer.Lex_error (msg, line, col) ->
        parse_diag ~line ~col msg
      | spec ->
        (* The analyzer ignores kernels for nodes outside the spec and
           reports SOC020 for spec nodes the library cannot resolve. *)
        let kernels = if graph_only then [] else builtin_kernels () in
        Soc_analysis.Analyze.run ~kernels spec)
  in
  let run files format werror ignored graph_only codes =
    if codes then begin
      List.iter
        (fun (code, doc) -> Printf.printf "%s  %s\n" code doc)
        Soc_analysis.Analyze.code_table;
      exit 0
    end;
    if files = [] then begin
      prerr_endline "socdsl: no input files (or pass --codes)";
      exit 2
    end;
    let per_file =
      List.map
        (fun file ->
          let ds =
            diags_of_file ~graph_only file
            |> Diag.suppress ~codes:ignored
            |> fun ds -> if werror then Diag.promote_warnings ds else ds
          in
          (file, Diag.sort ds))
        files
    in
    (match format with
    | `Text ->
      List.iter
        (fun (file, ds) ->
          List.iter (fun d -> print_endline (Diag.to_string ~file d)) ds;
          Printf.printf "%s: %s\n" file
            (if ds = [] then "clean"
             else
               Printf.sprintf "%d error(s), %d warning(s)" (Diag.error_count ds)
                 (Diag.warning_count ds)))
        per_file
    | `Json ->
      let all =
        List.concat_map
          (fun (file, ds) -> List.map (Diag.to_json ~file) ds)
          per_file
      in
      print_endline
        (if all = [] then "[]"
         else "[\n  " ^ String.concat ",\n  " all ^ "\n]"));
    if List.exists (fun (_, ds) -> Diag.has_errors ds) per_file then exit 1
  in
  let files_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"FILE"
         ~doc:"DSL source files (- for stdin).")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let werror_arg =
    Arg.(value & flag & info [ "Werror" ]
         ~doc:"Treat warnings as errors (after --ignore filtering).")
  in
  let ignore_arg =
    Arg.(value & opt (list string) [] & info [ "ignore" ] ~docv:"CODES"
         ~doc:"Comma-separated diagnostic codes to suppress, e.g. SOC032,RES211.")
  in
  let graph_only_arg =
    Arg.(value & flag & info [ "graph-only" ]
         ~doc:"Skip kernel-level checks (rates, typecheck, resources); graph \
               and address-map checks only.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ]
         ~doc:"List every stable diagnostic code with its meaning and exit.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze DSL sources: graph well-formedness, kernel \
          interface and type checks, SDF-style stream rate/deadlock analysis, \
          address-map and resource-budget checks. Exits 1 if any error is \
          found, 0 otherwise.")
    Term.(const run $ files_arg $ format_arg $ werror_arg $ ignore_arg
          $ graph_only_arg $ codes_arg)

(* ---------------- print ---------------- *)

let print_cmd =
  let run file =
    print_string (Soc_core.Printer.to_source (or_die (load file)))
  in
  Cmd.v (Cmd.info "print" ~doc:"Pretty-print the canonical form of a DSL source.")
    Term.(const run $ file_arg)

(* ---------------- tcl ---------------- *)

let backend_conv =
  Arg.enum [ ("2014.2", Soc_core.Tcl.V2014_2); ("2015.3", Soc_core.Tcl.V2015_3) ]

let backend_arg =
  Arg.(value & opt backend_conv Soc_core.Tcl.V2015_3 & info [ "backend" ] ~docv:"VERSION"
         ~doc:"Vivado backend version (2014.2 or 2015.3).")

let tcl_cmd =
  let run file backend =
    print_string (Soc_core.Tcl.generate ~version:backend (or_die (load file)))
  in
  Cmd.v (Cmd.info "tcl" ~doc:"Generate the Vivado integration Tcl script.")
    Term.(const run $ file_arg $ backend_arg)

(* ---------------- qsys (Altera backend) ---------------- *)

let qsys_cmd =
  let run file = print_string (Soc_core.Quartus.generate (or_die (load file))) in
  Cmd.v
    (Cmd.info "qsys"
       ~doc:"Generate the Altera Qsys/Quartus integration script (vendor extensibility).")
    Term.(const run $ file_arg)

(* ---------------- devicetree / api ---------------- *)

let devicetree_cmd =
  let run file =
    let spec = or_die (load file) in
    let sw = Soc_core.Swgen.generate spec ~address_map:(Soc_core.Flow.address_map_of_spec spec) in
    print_string sw.Soc_core.Swgen.device_tree
  in
  Cmd.v (Cmd.info "devicetree" ~doc:"Generate the Linux device-tree source.")
    Term.(const run $ file_arg)

let api_cmd =
  let run file header =
    let spec = or_die (load file) in
    let sw = Soc_core.Swgen.generate spec ~address_map:(Soc_core.Flow.address_map_of_spec spec) in
    print_string (if header then sw.Soc_core.Swgen.api_header else sw.Soc_core.Swgen.api_source)
  in
  let header_arg =
    Arg.(value & flag & info [ "header" ] ~doc:"Emit the header instead of the C source.")
  in
  Cmd.v (Cmd.info "api" ~doc:"Generate the C driver API (source, or header with --header).")
    Term.(const run $ file_arg $ header_arg)

(* ---------------- diagram ---------------- *)

let diagram_cmd =
  let run file format =
    let spec = or_die (load file) in
    match format with
    | `Dot -> print_string (Soc_core.Block_diagram.dot_of_spec spec)
    | `Ascii -> print_string (Soc_core.Block_diagram.ascii_of_spec spec)
  in
  let format_arg =
    Arg.(value & opt (enum [ ("dot", `Dot); ("ascii", `Ascii) ]) `Ascii
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: dot or ascii.")
  in
  Cmd.v (Cmd.info "diagram" ~doc:"Render the Fig. 10-style block diagram.")
    Term.(const run $ file_arg $ format_arg)

(* ---------------- metrics ---------------- *)

let metrics_cmd =
  let run file =
    let spec = or_die (load file) in
    let dsl = Soc_util.Metrics.of_string (Soc_core.Printer.to_source spec) in
    let tcl = Soc_util.Metrics.of_string (Soc_core.Tcl.generate ~version:Soc_core.Tcl.V2014_2 spec) in
    Printf.printf "DSL: %s\n" (Format.asprintf "%a" Soc_util.Metrics.pp_volume dsl);
    Printf.printf "Tcl: %s\n" (Format.asprintf "%a" Soc_util.Metrics.pp_volume tcl);
    Printf.printf "ratios: %.1fx lines, %.1fx characters\n"
      (Soc_util.Metrics.ratio ~num:tcl.Soc_util.Metrics.lines ~den:dsl.Soc_util.Metrics.lines)
      (Soc_util.Metrics.ratio ~num:tcl.Soc_util.Metrics.chars ~den:dsl.Soc_util.Metrics.chars)
  in
  Cmd.v (Cmd.info "metrics" ~doc:"Report the Section VI.C conciseness metrics (DSL vs Tcl).")
    Term.(const run $ file_arg)

(* ---------------- build ---------------- *)

let build_cmd =
  let run file seed =
    let spec = or_die (load file) in
    Printf.printf "effective seed: %d\n" seed;
    let missing =
      List.filter
        (fun (n : Soc_core.Spec.node_spec) ->
          not (List.mem_assoc n.Soc_core.Spec.node_name (builtin_kernels ())))
        spec.Soc_core.Spec.nodes
    in
    if missing <> [] then begin
      Printf.eprintf
        "socdsl: no built-in kernel for: %s\n(known kernels: %s)\n"
        (String.concat ", "
           (List.map (fun (n : Soc_core.Spec.node_spec) -> n.Soc_core.Spec.node_name) missing))
        (String.concat ", " (List.map fst (builtin_kernels ())));
      exit 1
    end;
    match Soc_core.Flow.build spec ~kernels:(builtin_kernels ()) with
    | exception Soc_core.Flow.Build_error msg ->
      prerr_endline ("socdsl: " ^ msg);
      exit 1
    | b ->
      Printf.printf "%s: flow complete\n" spec.Soc_core.Spec.design_name;
      Printf.printf "bitstream artifact: %s\n" b.Soc_core.Flow.bitstream;
      Printf.printf "resources: %s\n"
        (Format.asprintf "%a" Soc_hls.Report.pp_usage b.Soc_core.Flow.resources);
      Format.printf "%a"
        (Soc_hls.Report.pp_utilization ?device:None)
        b.Soc_core.Flow.resources;
      Printf.printf "fits xc7z020: %b\n" (Soc_hls.Report.fits b.Soc_core.Flow.resources);
      Printf.printf "estimated tool time: %s\n"
        (Format.asprintf "%a" Soc_core.Toolsim.pp b.Soc_core.Flow.tool_times);
      List.iter
        (fun (impl : Soc_core.Flow.node_impl) ->
          Format.printf "%a" Soc_hls.Perf.pp impl.Soc_core.Flow.accel.Soc_hls.Engine.perf)
        b.Soc_core.Flow.impls
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Run the full flow (HLS + integration + swgen) on a DSL source, resolving \
          node names against the built-in kernel library (case-study kernels).")
    Term.(const run $ file_arg $ seed_arg)

(* ---------------- farm ---------------- *)

let farm_cmd =
  let run files jobs cache_dir trace_out retries timeout seed =
    Printf.printf "effective seed: %d\n" seed;
    let entries =
      List.map
        (fun file ->
          let spec = or_die (load file) in
          let kernels =
            List.filter
              (fun (name, _) ->
                List.exists
                  (fun (n : Soc_core.Spec.node_spec) -> n.Soc_core.Spec.node_name = name)
                  spec.Soc_core.Spec.nodes)
              (builtin_kernels ())
          in
          { Soc_farm.Jobgraph.spec; kernels })
        files
    in
    let cache = Soc_farm.Cache.create ?disk_dir:cache_dir () in
    let report =
      Soc_farm.Farm.build_batch ?jobs ~cache ?retries ?timeout entries
    in
    print_string (Soc_farm.Farm.render_report report);
    (match trace_out with
    | Some path ->
      Soc_farm.Trace.save report.Soc_farm.Farm.trace path;
      Printf.printf "trace written to %s (load in chrome://tracing)\n" path
    | None -> ());
    if report.Soc_farm.Farm.failures <> [] then exit 1
  in
  let files_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
         ~doc:"DSL source files; the batch shares one content-addressed HLS cache.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains (default: the recommended domain count). Results are \
               bit-identical for any value.")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Persist the artifact cache to $(docv); later runs reuse HLS results \
               across invocations.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event JSON timeline of the batch to $(docv).")
  in
  let retries_arg =
    Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N"
         ~doc:"Retry budget per job for transient failures (default 2).")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Per-job deadline; a job past it is cancelled and reported.")
  in
  Cmd.v
    (Cmd.info "farm"
       ~doc:
         "Build a batch of DSL sources on the parallel build farm: per-kernel HLS jobs \
          are deduplicated by content hash and shared across architectures, work runs \
          on worker domains, and failures are reported per job without aborting the \
          batch.")
    Term.(const run $ files_arg $ jobs_arg $ cache_dir_arg $ trace_arg $ retries_arg
          $ timeout_arg $ seed_arg)

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let run seed faults width height no_fallback permanent bit_flips arch =
    let archs =
      match arch with
      | None -> Soc_apps.Graphs.all_archs
      | Some a -> [ a ]
    in
    Printf.printf "chaos campaign: effective seed %d, %d faults/arch, %dx%d image%s\n\n"
      seed faults width height
      (if no_fallback then ", fallback disabled" else "");
    let outcomes =
      List.map
        (fun a ->
          match
            Soc_apps.Chaos_runner.run ~width ~height ~seed ~n_faults:faults
              ~fallback:(not no_fallback) ~include_permanent:permanent
              ~include_bit_flips:bit_flips a
          with
          | o ->
            print_string (Soc_apps.Chaos_runner.render_outcome o);
            print_newline ();
            (a, Some o)
          | exception (Soc_platform.Executive.Unrecoverable _ as e) ->
            (* The registered printer renders the structured failure
               report: faulty unit, injected faults, attempt history. *)
            Printf.printf "=== %s: %s ===\n\n" (Soc_apps.Graphs.arch_name a)
              (Printexc.to_string e);
            (a, None))
        archs
    in
    (* Recovery-counter summary over the whole campaign. *)
    let keys =
      [ "injected"; "detected"; "resets"; "retried"; "recovered"; "fell_back";
        "unrecovered" ]
    in
    Printf.printf "%-8s %s %s\n" "arch"
      (String.concat " " (List.map (Printf.sprintf "%11s") keys))
      "output";
    List.iter
      (fun (a, o) ->
        match o with
        | Some (o : Soc_apps.Chaos_runner.outcome) ->
          let ctrs = Soc_fault.Fault.counters o.Soc_apps.Chaos_runner.plan in
          Printf.printf "%-8s %s %s\n"
            (Soc_apps.Graphs.arch_name a)
            (String.concat " "
               (List.map
                  (fun k -> Printf.sprintf "%11d" (Soc_util.Metrics.Counters.get ctrs k))
                  keys))
            (if o.Soc_apps.Chaos_runner.output_ok then "golden" else "MISMATCH")
        | None ->
          Printf.printf "%-8s %s %s\n" (Soc_apps.Graphs.arch_name a)
            (String.concat " " (List.map (fun _ -> Printf.sprintf "%11s" "-") keys))
            "UNRECOVERED")
      outcomes;
    let healthy =
      List.for_all
        (function
          | _, Some (o : Soc_apps.Chaos_runner.outcome) -> o.Soc_apps.Chaos_runner.output_ok
          | _, None -> false)
        outcomes
    in
    Printf.printf "\ncampaign %s (reproduce with --seed %d)\n"
      (if healthy then "healthy: all outputs golden" else "UNHEALTHY")
      seed;
    if not healthy then exit 1
  in
  let faults_arg =
    Arg.(value & opt int 4 & info [ "faults" ] ~docv:"N"
         ~doc:"Faults injected per architecture.")
  in
  let width_arg =
    Arg.(value & opt int 32 & info [ "width" ] ~docv:"W" ~doc:"Image width.")
  in
  let height_arg =
    Arg.(value & opt int 32 & info [ "height" ] ~docv:"H" ~doc:"Image height.")
  in
  let no_fallback_arg =
    Arg.(value & flag & info [ "no-fallback" ]
         ~doc:"Disable the software fallback; unrecovered campaigns report and fail.")
  in
  let permanent_arg =
    Arg.(value & flag & info [ "permanent" ]
         ~doc:"Allow permanently dead accelerators in the campaign.")
  in
  let bit_flips_arg =
    Arg.(value & flag & info [ "bit-flips" ]
         ~doc:"Allow single-bit DRAM flips in the output buffer.")
  in
  let arch_arg =
    Arg.(value & opt (some (enum
           [ ("1", Soc_apps.Graphs.Arch1); ("2", Soc_apps.Graphs.Arch2);
             ("3", Soc_apps.Graphs.Arch3); ("4", Soc_apps.Graphs.Arch4) ])) None
         & info [ "arch" ] ~docv:"N" ~doc:"Run a single architecture (1-4; default all).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos-test the co-simulated platform: run the Otsu case study under a \
          seeded fault-injection campaign (accelerator hangs, spurious dones, DMA \
          stalls and errors, stuck FIFOs, bus SLVERRs) with the fault-tolerant \
          runtime (watchdog, soft reset + retry, software fallback), and verify \
          the output stays bit-identical to the golden model.")
    Term.(const run $ seed_arg $ faults_arg $ width_arg $ height_arg $ no_fallback_arg
          $ permanent_arg $ bit_flips_arg $ arch_arg)

(* ---------------- demo ---------------- *)

let demo_cmd =
  let run design =
    match design with
    | `Listing4 -> print_endline Soc_apps.Graphs.listing4_source
    | `Arch a -> print_string (Soc_core.Printer.to_source (Soc_apps.Graphs.arch_spec a))
    | `Fig4 -> print_string (Soc_core.Printer.to_source Soc_apps.Graphs.fig4_spec)
  in
  let design_arg =
    Arg.(value
         & opt
             (enum
                [ ("listing4", `Listing4);
                  ("1", `Arch Soc_apps.Graphs.Arch1);
                  ("2", `Arch Soc_apps.Graphs.Arch2);
                  ("3", `Arch Soc_apps.Graphs.Arch3);
                  ("4", `Arch Soc_apps.Graphs.Arch4);
                  ("fig4", `Fig4) ])
             `Listing4
         & info [ "arch" ] ~docv:"N"
             ~doc:
               "Design to print: an Otsu architecture (1-4), the paper's \
                Fig. 4 pipeline (fig4), or the verbatim Listing 4 source \
                (listing4, default).")
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:
         "Print a built-in design as canonical DSL source (the paper's \
          Listing 4 by default; --arch selects other case studies).")
    Term.(const run $ design_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "socdsl" ~version:"1.0"
      ~doc:"Scala-style task-graph DSL tool for accelerator-based SoCs (OCaml reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ check_cmd; print_cmd; tcl_cmd; qsys_cmd; devicetree_cmd; api_cmd; diagram_cmd;
            metrics_cmd; build_cmd; farm_cmd; chaos_cmd; demo_cmd ]))
